//! Workspace walking and the D7 manifest rule.
//!
//! The walker enumerates every workspace crate under `crates/` (plus the
//! umbrella sources at the repository root, keyed `"suite"`), lints each
//! `src/**/*.rs` file through the rule engine, and checks every member
//! `Cargo.toml` — vendored shims included — against D7: a dependency is
//! legal only if it resolves to a workspace crate (`crates/…`) or a
//! vendored tree (`vendor/…`). Tests, benches and examples are not
//! production code and are not scanned.

use crate::rules::{lint_source, Finding, Rule, SuppressionSite};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every finding, suppressed ones included, ordered by file then line.
    pub findings: Vec<Finding>,
    /// Every well-formed suppression site encountered.
    pub suppressions: Vec<SuppressionSite>,
    /// Number of Rust source files scanned.
    pub files_scanned: usize,
    /// Number of manifests checked.
    pub manifests_checked: usize,
}

impl LintReport {
    /// Findings not covered by a suppression (the CI-gating set).
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed_by.is_none())
    }

    /// Number of suppressed findings.
    pub fn suppressed_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.suppressed_by.is_some())
            .count()
    }
}

/// Lints the workspace rooted at `root` (the directory holding the virtual
/// workspace `Cargo.toml`).
///
/// # Errors
///
/// Returns an error only for I/O failures (unreadable directories or
/// files); lint findings are data, not errors.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();

    let workspace_dep_paths = workspace_dependency_paths(root, &mut report)?;

    // Member crates under crates/.
    let mut crate_dirs: Vec<PathBuf> = read_dir_sorted(&root.join("crates"))?
        .into_iter()
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    // Vendored shims: manifests are checked (D7), sources are exempt.
    let vendor_dirs: Vec<PathBuf> = match read_dir_sorted(&root.join("vendor")) {
        Ok(dirs) => dirs
            .into_iter()
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect(),
        Err(_) => Vec::new(),
    };
    crate_dirs.sort();

    for dir in &crate_dirs {
        let crate_key = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        lint_manifest_file(
            root,
            &dir.join("Cargo.toml"),
            &workspace_dep_paths,
            &mut report,
        )?;

        // The umbrella crate (crates/suite) keeps its sources at the
        // repository root; every other crate's sources live in its src/.
        let src_dir = if crate_key == "suite" {
            root.join("src")
        } else {
            dir.join("src")
        };
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        let crate_root = crate_root_file(&src_dir);
        for file in files {
            let source = fs::read_to_string(&file)?;
            let rel = rel_to(root, &file);
            let is_root = Some(&file) == crate_root.as_ref();
            let (findings, sites) = lint_source(&crate_key, &rel, &source, is_root);
            report.findings.extend(findings);
            report.suppressions.extend(sites);
            report.files_scanned += 1;
        }
    }

    for dir in &vendor_dirs {
        lint_manifest_file(
            root,
            &dir.join("Cargo.toml"),
            &workspace_dep_paths,
            &mut report,
        )?;
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}

/// The crate-root file D5 applies to: `lib.rs` if present, else `main.rs`.
fn crate_root_file(src_dir: &Path) -> Option<PathBuf> {
    let lib = src_dir.join("lib.rs");
    if lib.is_file() {
        return Some(lib);
    }
    let main = src_dir.join("main.rs");
    main.is_file().then_some(main)
}

fn read_dir_sorted(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    Ok(entries)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Parses the root manifest's `[workspace.dependencies]` table into
/// `name -> path`, flagging entries that are not path-based or whose path
/// escapes `crates/` and `vendor/`.
fn workspace_dependency_paths(
    root: &Path,
    report: &mut LintReport,
) -> io::Result<BTreeMap<String, String>> {
    let manifest = root.join("Cargo.toml");
    let text = fs::read_to_string(&manifest)?;
    let rel = rel_to(root, &manifest);
    let mut deps = BTreeMap::new();
    let mut section = String::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if section != "workspace.dependencies" || line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim().trim_matches('"').to_string();
        match extract_path(value) {
            Some(path) if path_is_vendored(&path) => {
                deps.insert(name, path);
            }
            Some(path) => report.findings.push(manifest_finding(
                &rel,
                lineno + 1,
                format!(
                    "workspace dependency `{name}` resolves to {path:?}, outside crates/ \
                     and vendor/"
                ),
            )),
            None => report.findings.push(manifest_finding(
                &rel,
                lineno + 1,
                format!(
                    "workspace dependency `{name}` is not path-based: only workspace \
                     crates and vendored trees are allowed (offline build discipline)"
                ),
            )),
        }
    }
    report.manifests_checked += 1;
    Ok(deps)
}

/// Checks one member manifest's dependency sections against D7.
fn lint_manifest_file(
    root: &Path,
    manifest: &Path,
    workspace_deps: &BTreeMap<String, String>,
    report: &mut LintReport,
) -> io::Result<()> {
    let text = fs::read_to_string(manifest)?;
    let rel = rel_to(root, manifest);
    let manifest_dir = manifest.parent().unwrap_or(Path::new(""));
    let rel_dir = rel_to(root, manifest_dir);
    report
        .findings
        .extend(lint_manifest(&rel, &rel_dir, &text, workspace_deps));
    report.manifests_checked += 1;
    Ok(())
}

/// Lints one member `Cargo.toml` given its workspace-relative path, its
/// directory (for resolving relative dependency paths) and the root
/// `[workspace.dependencies]` path table. Exposed for fixture tests.
pub fn lint_manifest(
    rel_path: &str,
    rel_dir: &str,
    text: &str,
    workspace_deps: &BTreeMap<String, String>,
) -> Vec<Finding> {
    // `# lint: allow(vendored-deps-only) — reason` works in TOML too.
    let comments: Vec<crate::lexer::Comment> = text
        .lines()
        .enumerate()
        .filter_map(|(i, raw)| {
            let trimmed = raw.trim();
            let text = trimmed.strip_prefix('#')?.trim().to_string();
            Some(crate::lexer::Comment {
                text,
                line: i + 1,
                end_line: i + 1,
            })
        })
        .collect();
    let (sites, mut findings) = crate::rules::parse_suppressions(&comments, rel_path);
    let mut section = String::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let in_deps = section == "dependencies"
            || section == "dev-dependencies"
            || section == "build-dependencies"
            || (section.ends_with(".dependencies") && section != "workspace.dependencies");
        if !in_deps || line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        // `name.workspace = true` / `name.path = "…"` dotted forms.
        let (name, attr) = match key.split_once('.') {
            Some((n, a)) => (n.trim().trim_matches('"'), Some(a.trim())),
            None => (key.trim_matches('"'), None),
        };
        let uses_workspace = attr == Some("workspace") && value.contains("true")
            || value.contains("workspace") && value.contains("true");
        let path = if attr == Some("path") {
            Some(value.trim().trim_matches('"').to_string())
        } else {
            extract_path(value)
        };
        if uses_workspace {
            if !workspace_deps.contains_key(name) {
                findings.push(manifest_finding(
                    rel_path,
                    lineno + 1,
                    format!(
                        "dependency `{name}` inherits from the workspace, but the root \
                         [workspace.dependencies] table has no vendored path for it"
                    ),
                ));
            }
            continue;
        }
        match path {
            Some(p) => {
                let resolved = normalize_path(&format!("{rel_dir}/{p}"));
                if !path_is_vendored(&resolved) {
                    findings.push(manifest_finding(
                        rel_path,
                        lineno + 1,
                        format!(
                            "dependency `{name}` resolves to {resolved:?}, outside crates/ \
                             and vendor/"
                        ),
                    ));
                }
            }
            None => findings.push(manifest_finding(
                rel_path,
                lineno + 1,
                format!(
                    "dependency `{name}` is not a workspace crate or vendored tree: \
                     registry/git dependencies are forbidden (offline build discipline)"
                ),
            )),
        }
    }
    crate::rules::apply_suppressions(&mut findings, &sites);
    findings
}

/// Strips a trailing `#` comment from a TOML line (quote-aware enough for
/// the manifests in this workspace: `#` inside a quoted string is kept).
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn manifest_finding(rel_path: &str, line: usize, message: String) -> Finding {
    Finding {
        rule: Rule::VendoredDepsOnly,
        file: rel_path.to_string(),
        line,
        col: 1,
        message,
        suppressed_by: None,
    }
}

/// Pulls `path = "…"` out of an inline-table dependency value.
fn extract_path(value: &str) -> Option<String> {
    let idx = value.find("path")?;
    let rest = &value[idx + "path".len()..];
    let rest = rest.trim_start().strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// True when a workspace-relative path points into `crates/` or `vendor/`.
fn path_is_vendored(path: &str) -> bool {
    path.starts_with("crates/") || path.starts_with("vendor/")
}

/// Lexically normalizes `a/b/../c` style paths.
fn normalize_path(path: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for part in path.split('/') {
        match part {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            p => parts.push(p),
        }
    }
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_deps() -> BTreeMap<String, String> {
        BTreeMap::from([
            ("prophunt-gf2".to_string(), "crates/gf2".to_string()),
            ("rand".to_string(), "vendor/rand".to_string()),
        ])
    }

    #[test]
    fn workspace_and_path_deps_pass_registry_deps_fail() {
        let text = "\
[package]
name = \"x\"

[dependencies]
prophunt-gf2.workspace = true
rand = { workspace = true }
local = { path = \"../gf2\" }
serde = \"1.0\"
remote = { git = \"https://example.com/x\" }
";
        let findings = lint_manifest("crates/x/Cargo.toml", "crates/x", text, &ws_deps());
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("serde"));
        assert_eq!(findings[0].line, 8);
        assert!(findings[1].message.contains("remote"));
    }

    #[test]
    fn escaping_paths_are_flagged() {
        let text = "[dependencies]\nout = { path = \"../../elsewhere/thing\" }\n";
        let findings = lint_manifest("crates/x/Cargo.toml", "crates/x", text, &ws_deps());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("elsewhere/thing"));
    }

    #[test]
    fn workspace_inherit_without_root_path_is_flagged() {
        let text = "[dependencies]\nmystery.workspace = true\n";
        let findings = lint_manifest("crates/x/Cargo.toml", "crates/x", text, &ws_deps());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("mystery"));
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let text = "[package]\nversion = \"1.0\"\n[lints]\nworkspace = true\n";
        let findings = lint_manifest("crates/x/Cargo.toml", "crates/x", text, &ws_deps());
        assert!(findings.is_empty());
    }
}
