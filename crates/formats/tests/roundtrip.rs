//! Property tests: `parse(write(x)) == x` for every text format in this crate.
//!
//! Uses the vendored offline proptest shim (deterministic cases, no shrinking); the
//! strategies draw a `u64` seed and expand it with `StdRng` so arbitrary structured
//! values stay reproducible.

use prophunt_circuit::dem::{DetectorErrorModel, ErrorMechanism};
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_formats::report::ReportRecord;
use prophunt_formats::{
    parse_code_spec, parse_dem, parse_report, parse_schedule, write_code_spec, write_dem,
    write_report, write_schedule, CodeSpec, Json,
};
use prophunt_qec::small::quantum_repetition_code;
use prophunt_qec::surface::rotated_surface_code_with_layout;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_rows(rng: &mut StdRng, rows: usize, n: usize) -> Vec<Vec<u8>> {
    (0..rows)
        .map(|_| (0..n).map(|_| rng.gen_range(0u8..2)).collect())
        .collect()
}

fn random_code_spec(seed: u64) -> CodeSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1usize..24);
    let name_len = rng.gen_range(1usize..12);
    let charset: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789_-".chars().collect();
    let name: String = (0..name_len)
        .map(|_| charset[rng.gen_range(0..charset.len())])
        .collect();
    let with_logicals = rng.gen_range(0u8..2) == 1;
    let k = rng.gen_range(0usize..3);
    let distance = if rng.gen_range(0u8..2) == 1 {
        Some(rng.gen_range(1usize..10))
    } else {
        None
    };
    let hx_rows = rng.gen_range(0usize..6);
    let hz_rows = rng.gen_range(0usize..6);
    CodeSpec {
        name,
        n,
        distance,
        hx: random_rows(&mut rng, hx_rows, n),
        hz: random_rows(&mut rng, hz_rows, n),
        lx: if with_logicals {
            random_rows(&mut rng, k, n)
        } else {
            Vec::new()
        },
        lz: if with_logicals {
            random_rows(&mut rng, k, n)
        } else {
            Vec::new()
        },
    }
}

fn random_dem(seed: u64) -> DetectorErrorModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_detectors = rng.gen_range(1usize..24);
    let num_observables = rng.gen_range(0usize..3);
    let num_errors = rng.gen_range(0usize..40);
    let errors = (0..num_errors)
        .map(|_| {
            let mut detectors: Vec<usize> = (0..num_detectors)
                .filter(|_| rng.gen_range(0u8..4) == 0)
                .collect();
            if detectors.is_empty() {
                detectors.push(rng.gen_range(0..num_detectors));
            }
            let observables: Vec<usize> = (0..num_observables)
                .filter(|_| rng.gen_range(0u8..3) == 0)
                .collect();
            // Mix "round" probabilities with raw uniform draws so both short and
            // long decimal expansions are exercised.
            let probability = match rng.gen_range(0u8..3) {
                0 => 1e-3,
                1 => rng.gen_range(0.0..1.0),
                _ => rng.gen_range(0.0..1.0) * 1e-7,
            };
            ErrorMechanism {
                probability,
                detectors,
                observables,
                sources: Vec::new(),
            }
        })
        .collect();
    DetectorErrorModel::from_parts(num_detectors, num_observables, errors).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn code_specs_round_trip(seed in any::<u64>()) {
        let spec = random_code_spec(seed);
        let text = write_code_spec(&spec);
        let parsed = parse_code_spec(&text).unwrap();
        prop_assert_eq!(&parsed, &spec);
        // Idempotence: a second round trip is byte-identical.
        prop_assert_eq!(write_code_spec(&parsed), text);
    }

    #[test]
    fn dems_round_trip(seed in any::<u64>()) {
        let dem = random_dem(seed);
        let text = write_dem(&dem);
        let parsed = parse_dem(&text).unwrap();
        prop_assert!(parsed.same_distribution(&dem));
        prop_assert_eq!(write_dem(&parsed), text);
    }

    #[test]
    fn random_surface_schedules_round_trip(seed in any::<u64>()) {
        let (code, _) = rotated_surface_code_with_layout(3);
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = ScheduleSpec::random(&code, &mut rng);
        let text = write_schedule(&schedule);
        let parsed = parse_schedule(&text).unwrap();
        prop_assert_eq!(&parsed, &schedule);
        prop_assert_eq!(write_schedule(&parsed), text);
    }

    #[test]
    fn repetition_schedules_round_trip(seed in any::<u64>(), n in 2usize..9) {
        let code = quantum_repetition_code(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = ScheduleSpec::random(&code, &mut rng);
        let parsed = parse_schedule(&write_schedule(&schedule)).unwrap();
        prop_assert_eq!(parsed, schedule);
    }

    #[test]
    fn ler_records_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let record = ReportRecord::Ler {
            label: format!("sweep-{}", rng.gen_range(0u64..1000)),
            p: rng.gen_range(0.0..1.0),
            idle: rng.gen_range(0.0..1.0) * 1e-4,
            shots: rng.gen_range(0u64..u64::MAX),
            failures: rng.gen_range(0u64..1_000_000),
            seed: rng.gen_range(0u64..u64::MAX),
            chunk_size: rng.gen_range(1u64..4096),
            decoder: ["bposd", "unionfind"][rng.gen_range(0usize..2)].to_string(),
            noise: format!("depolarizing:{}", rng.gen_range(0.0..0.1)),
            stop: ["shots_exhausted", "max_failures", "target_rse"][rng.gen_range(0usize..3)]
                .to_string(),
            engine: ["scalar", "frames"][rng.gen_range(0usize..2)].to_string(),
            wall_s: rng.gen_range(0.0..1e4),
            shots_per_sec: rng.gen_range(0.0..1e7),
        };
        let text = write_report([&record]);
        let parsed = parse_report(&text).unwrap();
        prop_assert_eq!(parsed, vec![record]);
    }

    #[test]
    fn table_records_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fields = (0..rng.gen_range(0usize..6))
            .map(|i| {
                let value = match rng.gen_range(0u8..4) {
                    0 => Json::UInt(rng.gen_range(0u64..u64::MAX)),
                    1 => Json::Float(rng.gen_range(0.0..1e9)),
                    2 => Json::Str(format!("value \"{}\"\n", rng.gen_range(0u64..100))),
                    _ => Json::Array(vec![Json::UInt(rng.gen_range(0u64..10)), Json::Null]),
                };
                (format!("field_{i}"), value)
            })
            .collect();
        let record = ReportRecord::Table {
            name: "proptest".into(),
            fields,
        };
        let parsed = parse_report(&write_report([&record])).unwrap();
        prop_assert_eq!(parsed, vec![record]);
    }
}
