//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! The solver implements the standard modern architecture: two watched literals per
//! clause, first-UIP conflict analysis with clause learning, exponential variable
//! activity (VSIDS-style) with phase saving, and geometric restarts. It is deliberately
//! compact — the MaxSAT models PropHunt produces for ambiguous subgraphs have a few
//! hundred variables and around a thousand clauses (Table 2 of the paper), far below the
//! sizes where a highly tuned solver would matter. The *global* circuit-level models are
//! intentionally allowed to time out, exactly as they do in the paper.

use crate::cnf::Lit;

/// A deterministic search-effort budget for a [`Solver::solve`] call.
///
/// Budgets are measured in *conflicts*, not wall-clock time: two solves of
/// the same formula with the same budget do exactly the same work and return
/// the same result on any machine, under any load, at any thread count —
/// which is what keeps the `maxsat` search arm inside the workspace's
/// determinism contract. (An earlier revision used an `Instant`-based
/// deadline; a solve racing a heavily loaded machine could then return a
/// different incumbent than the same solve on an idle one.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveBudget {
    /// Search until a verdict is reached, however long that takes.
    Unlimited,
    /// Give up (returning [`SolveResult::Unknown`]) after this many
    /// conflicts in this call.
    Conflicts(u64),
}

impl SolveBudget {
    /// Returns the remaining budget after `spent` conflicts, saturating at 0.
    pub fn minus(self, spent: u64) -> SolveBudget {
        match self {
            SolveBudget::Unlimited => SolveBudget::Unlimited,
            SolveBudget::Conflicts(n) => SolveBudget::Conflicts(n.saturating_sub(spent)),
        }
    }

    /// True when the budget allows no further conflicts.
    pub fn is_exhausted(self) -> bool {
        matches!(self, SolveBudget::Conflicts(0))
    }
}

/// The outcome of a SAT solve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// The formula is satisfiable; the payload maps each variable index to its value.
    Sat(Vec<bool>),
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict was reached.
    Unknown,
}

impl SolveResult {
    /// Returns the model if the result is [`SolveResult::Sat`].
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` if the result is [`SolveResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }
}

const UNASSIGNED: i8 = 0;
const TRUE: i8 = 1;
const FALSE: i8 = -1;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

/// A CDCL SAT solver over a fixed set of variables.
///
/// Clauses are added with [`Solver::add_clause`]; [`Solver::solve`] runs the search
/// within a deterministic conflict budget. The solver can be reused for repeated solves only by
/// rebuilding it (the MaxSAT driver rebuilds per iteration, which is cheap at the model
/// sizes involved).
#[derive(Debug)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    watches: Vec<Vec<usize>>, // literal index -> clause indices watching that literal
    assign: Vec<i8>,          // var -> UNASSIGNED / TRUE / FALSE
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    ok: bool,
    conflicts: u64,
}

impl Solver {
    /// Creates a solver over `num_vars` variables with no clauses.
    pub fn new(num_vars: usize) -> Self {
        Solver {
            num_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            assign: vec![UNASSIGNED; num_vars],
            level: vec![0; num_vars],
            reason: vec![None; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            phase: vec![false; num_vars],
            ok: true,
            conflicts: 0,
        }
    }

    /// Returns the number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns the number of conflicts encountered so far (a proxy for search effort).
    pub fn num_conflicts(&self) -> u64 {
        self.conflicts
    }

    fn lit_value(&self, lit: Lit) -> i8 {
        let v = self.assign[lit.var().index()];
        if v == UNASSIGNED {
            UNASSIGNED
        } else if lit.is_positive() {
            v
        } else {
            -v
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the formula became trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable outside the solver.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(
            self.decision_level(),
            0,
            "clauses must be added before solving"
        );
        if !self.ok {
            return false;
        }
        // Normalise: remove duplicates and satisfied/falsified literals at level 0.
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!(l.var().index() < self.num_vars, "literal out of range");
            if self.lit_value(l) == TRUE || clause.contains(&!l) {
                return true; // clause already satisfied or tautological
            }
            if self.lit_value(l) == FALSE || clause.contains(&l) {
                continue;
            }
            clause.push(l);
        }
        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(clause[0], None) {
                    self.ok = false;
                    return false;
                }
                if self.propagate().is_some() {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[clause[0].index()].push(idx);
                self.watches[clause[1].index()].push(idx);
                self.clauses.push(Clause { lits: clause });
                true
            }
        }
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) -> bool {
        match self.lit_value(lit) {
            TRUE => true,
            FALSE => false,
            _ => {
                let v = lit.var().index();
                self.assign[v] = if lit.is_positive() { TRUE } else { FALSE };
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.phase[v] = lit.is_positive();
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation; returns the index of a conflicting clause if one is found.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            let falsified = !lit;
            let mut watchers = std::mem::take(&mut self.watches[falsified.index()]);
            let mut i = 0;
            while i < watchers.len() {
                let ci = watchers[i];
                // Ensure the falsified literal is in position 1.
                if self.clauses[ci].lits[0] == falsified {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if self.lit_value(first) == TRUE {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let cand = self.clauses[ci].lits[k];
                    if self.lit_value(cand) != FALSE {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[cand.index()].push(ci);
                        watchers.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if !self.enqueue(first, Some(ci)) {
                    // Conflict: restore remaining watchers and report.
                    self.watches[falsified.index()] = watchers;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[falsified.index()] = watchers;
        }
        None
    }

    fn bump(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting literal first)
    /// and the backtrack level.
    fn analyze(&mut self, confl: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the asserting literal
        let mut seen = vec![false; self.num_vars];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = Some(confl);
        let mut index = self.trail.len();
        loop {
            let clause = confl.expect("conflict analysis requires a reason clause");
            let start = usize::from(p.is_some());
            // For reason clauses, lits[0] is the implied literal p; skip it.
            for k in start..self.clauses[clause].lits.len() {
                let q = self.clauses[clause].lits[k];
                let v = q.var().index();
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(v);
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal from the trail to resolve on.
            loop {
                index -= 1;
                if seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            seen[v] = false;
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                break;
            }
            confl = self.reason[v];
        }
        learnt[0] = !p.expect("first UIP exists");
        // Backtrack level: highest level among the non-asserting literals.
        let mut bt = 0u32;
        let mut swap_idx = 1usize;
        for (i, l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().index()];
            if lv > bt {
                bt = lv;
                swap_idx = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, swap_idx);
        }
        (learnt, bt)
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let lit = self.trail.pop().expect("trail nonempty");
                let v = lit.var().index();
                self.assign[v] = UNASSIGNED;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars {
            if self.assign[v] == UNASSIGNED
                && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best.map(|v| Lit::new(crate::cnf::Var(v as u32), self.phase[v]))
    }

    /// Runs the CDCL search, bounded by a deterministic conflict budget.
    ///
    /// With [`SolveBudget::Conflicts`]`(n)` the search gives up and returns
    /// [`SolveResult::Unknown`] once this call has generated `n` conflicts
    /// (conflicts from earlier calls on a reused solver do not count against
    /// the budget). The same formula with the same budget always returns the
    /// same result, independent of machine speed or load.
    pub fn solve(&mut self, budget: SolveBudget) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let conflicts_at_start = self.conflicts;
        let mut restart_limit = 128u64;
        let mut conflicts_since_restart = 0u64;
        loop {
            if let SolveBudget::Conflicts(limit) = budget {
                if self.conflicts - conflicts_at_start >= limit {
                    self.backtrack(0);
                    return SolveResult::Unknown;
                }
            }
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    let ok = self.enqueue(asserting, None);
                    debug_assert!(ok, "asserting unit must be enqueueable after backtrack");
                } else {
                    let idx = self.clauses.len();
                    self.watches[learnt[0].index()].push(idx);
                    self.watches[learnt[1].index()].push(idx);
                    self.clauses.push(Clause { lits: learnt });
                    let ok = self.enqueue(asserting, Some(idx));
                    debug_assert!(ok, "asserting literal must be enqueueable after backtrack");
                }
                self.decay();
            } else {
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_limit = (restart_limit as f64 * 1.5) as u64;
                    self.backtrack(0);
                    continue;
                }
                match self.decide() {
                    None => {
                        // All variables assigned: model found.
                        let model = (0..self.num_vars).map(|v| self.assign[v] == TRUE).collect();
                        self.backtrack(0);
                        return SolveResult::Sat(model);
                    }
                    Some(lit) => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(lit, None);
                        debug_assert!(ok, "decision literal must be unassigned");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{CnfBuilder, Var};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn lit(v: u32, positive: bool) -> Lit {
        Lit::new(Var(v), positive)
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = Solver::new(1);
        assert!(s.add_clause(&[lit(0, true)]));
        assert!(s.solve(SolveBudget::Unlimited).is_sat());

        let mut s = Solver::new(1);
        s.add_clause(&[lit(0, true)]);
        s.add_clause(&[lit(0, false)]);
        assert_eq!(s.solve(SolveBudget::Unlimited), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new(2);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(SolveBudget::Unlimited), SolveResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (x0) & (~x0 | x1) & (~x1 | x2) forces all true.
        let mut s = Solver::new(3);
        s.add_clause(&[lit(0, true)]);
        s.add_clause(&[lit(0, false), lit(1, true)]);
        s.add_clause(&[lit(1, false), lit(2, true)]);
        match s.solve(SolveBudget::Unlimited) {
            SolveResult::Sat(m) => assert_eq!(m, vec![true, true, true]),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_three_into_two_is_unsat() {
        // Pigeons p in 0..3, holes h in 0..2; var(p, h) = p * 2 + h.
        let mut s = Solver::new(6);
        let v = |p: u32, h: u32| lit(p * 2 + h, true);
        for p in 0..3 {
            s.add_clause(&[v(p, 0), v(p, 1)]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause(&[!v(p1, h), !v(p2, h)]);
                }
            }
        }
        assert_eq!(s.solve(SolveBudget::Unlimited), SolveResult::Unsat);
    }

    /// Brute-force satisfiability check for cross-validation.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
        for mask in 0u64..(1 << num_vars) {
            let assignment: Vec<bool> = (0..num_vars).map(|v| (mask >> v) & 1 == 1).collect();
            if clauses
                .iter()
                .all(|c| c.iter().any(|l| l.apply(assignment[l.var().index()])))
            {
                return true;
            }
        }
        false
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        let mut rng = StdRng::seed_from_u64(2024);
        for case in 0..60 {
            let num_vars = rng.gen_range(3..10);
            let num_clauses = rng.gen_range(3..(num_vars * 5));
            let mut builder = CnfBuilder::new();
            let vars = builder.new_vars(num_vars);
            let mut clauses = Vec::new();
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..=3);
                let mut clause = Vec::new();
                for _ in 0..len {
                    let v = vars[rng.gen_range(0..num_vars)];
                    clause.push(Lit::new(v, rng.gen_bool(0.5)));
                }
                builder.add_clause(&clause);
                clauses.push(clause);
            }
            let mut solver = builder.build_solver();
            let expected = brute_force_sat(num_vars, &clauses);
            let result = solver.solve(SolveBudget::Unlimited);
            match (&result, expected) {
                (SolveResult::Sat(model), true) => {
                    // Verify the model actually satisfies every clause.
                    for clause in &clauses {
                        assert!(
                            clause.iter().any(|l| l.apply(model[l.var().index()])),
                            "case {case}: returned model violates a clause"
                        );
                    }
                }
                (SolveResult::Unsat, false) => {}
                other => {
                    panic!("case {case}: solver said {other:?} but brute force said {expected}")
                }
            }
        }
    }

    #[test]
    fn solver_counts_conflicts_on_hard_instances() {
        let mut s = Solver::new(8);
        let v = |p: u32, h: u32| lit(p * 3 + h, true);
        // Pigeonhole 4 into... keep it small: 3 pigeons, 2 holes again but via 3-hole vars
        // to generate more conflicts.
        for p in 0..2 {
            s.add_clause(&[v(p, 0), v(p, 1), v(p, 2)]);
        }
        s.add_clause(&[!v(0, 0), !v(1, 0)]);
        s.add_clause(&[!v(0, 1), !v(1, 1)]);
        s.add_clause(&[!v(0, 2), !v(1, 2)]);
        assert!(s.solve(SolveBudget::Unlimited).is_sat());
    }
}
