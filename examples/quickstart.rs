//! Quickstart: optimize the syndrome-measurement circuit of a d = 3 surface code,
//! then export the optimized schedule and its detector error model as files.
//!
//! Run with `cargo run --release --example quickstart`. The exported files use the
//! `prophunt-formats` interchange formats (see `FORMATS.md`) and can be fed back to
//! the `prophunt` CLI, e.g. `prophunt ler --dem quickstart_optimized.dem` or
//! `prophunt optimize --code surface:3 --resume quickstart_optimized.schedule`.

use prophunt_suite::circuit::schedule::ScheduleSpec;
use prophunt_suite::circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_suite::core::{PropHunt, PropHuntConfig};
use prophunt_suite::decoders::{estimate_logical_error_rate, BpOsdDecoder};
use prophunt_suite::formats::{parse_dem, parse_schedule, write_dem, write_schedule};
use prophunt_suite::qec::surface::rotated_surface_code_with_layout;
use prophunt_suite::runtime::{Runtime, RuntimeConfig};

fn logical_error_rate(
    code: &prophunt_suite::qec::CssCode,
    schedule: &ScheduleSpec,
    p: f64,
    shots: usize,
) -> f64 {
    let mut combined_failures = 0;
    let mut combined_shots = 0;
    for basis in [MemoryBasis::Z, MemoryBasis::X] {
        let exp = MemoryExperiment::build(code, schedule, 3, basis).expect("valid schedule");
        let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p));
        let decoder = BpOsdDecoder::new(&dem);
        let runtime = Runtime::new(RuntimeConfig::new(4, 64, 0));
        let estimate = estimate_logical_error_rate(&dem, &decoder, shots, 42, &runtime);
        combined_failures += estimate.failures;
        combined_shots += estimate.shots;
    }
    combined_failures as f64 / combined_shots as f64
}

fn main() {
    let (code, layout) = rotated_surface_code_with_layout(3);
    println!("code: {code}");

    // Start from a deliberately poor schedule (hook errors aligned with the logicals).
    let poor = ScheduleSpec::surface_poor(&code, &layout);
    let hand = ScheduleSpec::surface_hand_designed(&code, &layout);

    let p = 3e-3;
    let shots = 2_000;
    println!(
        "poor schedule         LER = {:.4}",
        logical_error_rate(&code, &poor, p, shots)
    );
    println!(
        "hand-designed schedule LER = {:.4}",
        logical_error_rate(&code, &hand, p, shots)
    );

    // Let PropHunt repair the poor schedule automatically.
    let prophunt = PropHunt::new(code.clone(), PropHuntConfig::quick(3));
    let result = prophunt.optimize(poor);
    println!(
        "PropHunt applied {} changes over {} iterations (final CNOT depth {})",
        result.total_changes_applied(),
        result.records.len(),
        result.final_depth()
    );
    println!(
        "optimized schedule    LER = {:.4}",
        logical_error_rate(&code, &result.final_schedule, p, shots)
    );
    if let Some(d_eff) = prophunt.estimate_effective_distance(&result.final_schedule, 10) {
        println!("estimated effective distance of optimized circuit: {d_eff}");
    }

    // Export the optimized circuit through the interchange formats: the schedule as
    // a `prophunt-schedule v1` file and its Z-memory detector error model as a
    // Stim-compatible `.dem` file, both written to the temp directory.
    let out_dir = std::env::temp_dir();
    let schedule_path = out_dir.join("quickstart_optimized.schedule");
    let dem_path = out_dir.join("quickstart_optimized.dem");
    let schedule_text = write_schedule(&result.final_schedule);
    let exp = MemoryExperiment::build(&code, &result.final_schedule, 3, MemoryBasis::Z)
        .expect("optimized schedule stays valid");
    let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p));
    let dem_text = write_dem(&dem);
    std::fs::write(&schedule_path, &schedule_text).expect("write schedule file");
    std::fs::write(&dem_path, &dem_text).expect("write dem file");

    // Both files parse back to exactly what was exported.
    assert_eq!(
        parse_schedule(&schedule_text).expect("schedule file parses"),
        result.final_schedule
    );
    assert!(parse_dem(&dem_text)
        .expect("dem file parses")
        .same_distribution(&dem));
    println!("exported schedule to {}", schedule_path.display());
    println!(
        "exported detector error model ({} mechanisms) to {}",
        dem.num_errors(),
        dem_path.display()
    );
}
