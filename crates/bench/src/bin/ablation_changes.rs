//! Ablation: how much each change family (reordering vs rescheduling) contributes.
//! PropHunt is run with candidates filtered to one family at a time.

use prophunt::ambiguity::{find_ambiguous_subgraph, DecodingGraph};
use prophunt::changes::{enumerate_candidates, verify_candidate, CandidateChange};
use prophunt::minweight::min_weight_logical_error;
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::{MemoryBasis, NoiseModel, ScheduleEval};
use prophunt_qec::surface::rotated_surface_code_with_layout;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    let (code, layout) = rotated_surface_code_with_layout(3);
    let schedule = ScheduleSpec::surface_poor(&code, &layout);
    let graph = DecodingGraph::build(&code, &schedule, 3, MemoryBasis::Z, 1e-3).unwrap();
    let eval = ScheduleEval::new(schedule.clone()).unwrap();
    let mut rng = StdRng::seed_from_u64(15);
    let mut totals = [0usize; 2]; // enumerated [reorder, reschedule]
    let mut verified = [0usize; 2];
    let mut subgraphs = 0;
    for _ in 0..40 {
        let Some(sub) = find_ambiguous_subgraph(&graph, &mut rng, 60) else {
            continue;
        };
        let Some(sol) = min_weight_logical_error(&sub, Duration::from_secs(10)) else {
            continue;
        };
        subgraphs += 1;
        for candidate in enumerate_candidates(&graph, &code, &schedule, &sol, &mut rng) {
            let idx = match candidate {
                CandidateChange::Reorder { .. } => 0,
                CandidateChange::Reschedule { .. } => 1,
            };
            totals[idx] += 1;
            if verify_candidate(
                &code,
                &eval,
                &candidate,
                &sub,
                &sol,
                &graph,
                3,
                MemoryBasis::Z,
                &NoiseModel::uniform_depolarizing(1e-3),
            )
            .is_some()
            {
                verified[idx] += 1;
            }
        }
    }
    println!("Ablation: change families on the poor d=3 surface schedule ({subgraphs} subgraphs)");
    println!("{:<14} {:>12} {:>12}", "family", "enumerated", "verified");
    println!("{:<14} {:>12} {:>12}", "reordering", totals[0], verified[0]);
    println!(
        "{:<14} {:>12} {:>12}",
        "rescheduling", totals[1], verified[1]
    );
}
