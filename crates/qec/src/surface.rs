//! Rotated surface codes and their planar layout.
//!
//! The rotated surface code of odd distance `d` places `d × d` data qubits on a grid and
//! `d² − 1` stabilizers on the faces between them (plus weight-2 boundary faces). The
//! layout information (which data qubit sits at which corner of which face) is needed by
//! the hand-designed "N/Z" CNOT schedule of the paper's Section 3.1, so the constructor
//! can also return a [`SurfaceLayout`].

use crate::css::{CssCode, StabilizerKind};
use prophunt_gf2::BitMatrix;

/// The four corners of a surface-code face, in the order used throughout this crate.
///
/// `NW` is "north-west" with rows increasing downward, i.e. the data qubit at the
/// smallest row and column of the face.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corner {
    /// North-west corner (smallest row, smallest column).
    Nw,
    /// North-east corner (smallest row, largest column).
    Ne,
    /// South-west corner (largest row, smallest column).
    Sw,
    /// South-east corner (largest row, largest column).
    Se,
}

impl Corner {
    /// All four corners in canonical order `[NW, NE, SW, SE]`.
    pub const ALL: [Corner; 4] = [Corner::Nw, Corner::Ne, Corner::Sw, Corner::Se];

    /// Index of this corner within [`Corner::ALL`].
    pub fn index(self) -> usize {
        match self {
            Corner::Nw => 0,
            Corner::Ne => 1,
            Corner::Sw => 2,
            Corner::Se => 3,
        }
    }
}

/// Geometric layout of a rotated surface code: which data qubit sits at which corner of
/// each stabilizer's face.
///
/// Stabilizer indices match the row order of the corresponding [`CssCode`] check
/// matrices, so `x_corners[i]` describes row `i` of `H_X`.
#[derive(Debug, Clone)]
pub struct SurfaceLayout {
    /// The code distance `d`.
    pub distance: usize,
    /// For each X stabilizer, the data qubit (if any) at each of `[NW, NE, SW, SE]`.
    pub x_corners: Vec<[Option<usize>; 4]>,
    /// For each Z stabilizer, the data qubit (if any) at each of `[NW, NE, SW, SE]`.
    pub z_corners: Vec<[Option<usize>; 4]>,
}

impl SurfaceLayout {
    /// Returns the corner table for the given stabilizer kind.
    pub fn corners(&self, kind: StabilizerKind) -> &[[Option<usize>; 4]] {
        match kind {
            StabilizerKind::X => &self.x_corners,
            StabilizerKind::Z => &self.z_corners,
        }
    }

    /// Returns the data qubits of stabilizer `index` of `kind` ordered by the given
    /// corner sequence, skipping absent corners (for weight-2 boundary stabilizers).
    pub fn ordered_support(
        &self,
        kind: StabilizerKind,
        index: usize,
        corner_order: &[Corner],
    ) -> Vec<usize> {
        let corners = &self.corners(kind)[index];
        corner_order
            .iter()
            .filter_map(|c| corners[c.index()])
            .collect()
    }
}

/// Constructs the rotated surface code of distance `d`.
///
/// The logical operators are the conventional string operators: `L_X` is the middle row
/// of data qubits and `L_Z` the middle column, matching the paper's Section 2.2 example
/// for `d = 3`.
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn rotated_surface_code(d: usize) -> CssCode {
    rotated_surface_code_with_layout(d).0
}

/// Constructs the rotated surface code of distance `d` together with its planar layout.
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn rotated_surface_code_with_layout(d: usize) -> (CssCode, SurfaceLayout) {
    assert!(d >= 2, "surface code distance must be at least 2");
    let n = d * d;
    let qubit = |r: usize, c: usize| r * d + c;

    let mut x_rows: Vec<Vec<usize>> = Vec::new();
    let mut z_rows: Vec<Vec<usize>> = Vec::new();
    let mut x_corners: Vec<[Option<usize>; 4]> = Vec::new();
    let mut z_corners: Vec<[Option<usize>; 4]> = Vec::new();

    // Bulk faces between rows (fr, fr+1) and columns (fc, fc+1).
    for fr in 0..d - 1 {
        for fc in 0..d - 1 {
            let corners = [
                Some(qubit(fr, fc)),
                Some(qubit(fr, fc + 1)),
                Some(qubit(fr + 1, fc)),
                Some(qubit(fr + 1, fc + 1)),
            ];
            let support: Vec<usize> = corners.iter().map(|q| q.unwrap()).collect();
            if (fr + fc) % 2 == 0 {
                x_rows.push(support);
                x_corners.push(corners);
            } else {
                z_rows.push(support);
                z_corners.push(corners);
            }
        }
    }
    // Left boundary X faces (virtual column -1): X-type when fr is odd.
    for fr in 0..d - 1 {
        if fr % 2 == 1 {
            let corners = [None, Some(qubit(fr, 0)), None, Some(qubit(fr + 1, 0))];
            x_rows.push(vec![qubit(fr, 0), qubit(fr + 1, 0)]);
            x_corners.push(corners);
        }
    }
    // Right boundary X faces (virtual column d-1 extended): X-type when fr + d - 1 even.
    for fr in 0..d - 1 {
        if (fr + d - 1).is_multiple_of(2) {
            let corners = [
                Some(qubit(fr, d - 1)),
                None,
                Some(qubit(fr + 1, d - 1)),
                None,
            ];
            x_rows.push(vec![qubit(fr, d - 1), qubit(fr + 1, d - 1)]);
            x_corners.push(corners);
        }
    }
    // Top boundary Z faces (virtual row -1): Z-type when fc is even.
    for fc in 0..d - 1 {
        if fc % 2 == 0 {
            let corners = [None, None, Some(qubit(0, fc)), Some(qubit(0, fc + 1))];
            z_rows.push(vec![qubit(0, fc), qubit(0, fc + 1)]);
            z_corners.push(corners);
        }
    }
    // Bottom boundary Z faces (virtual row d-1 extended): Z-type when fr + fc odd.
    for fc in 0..d - 1 {
        if (d - 1 + fc) % 2 == 1 {
            let corners = [
                Some(qubit(d - 1, fc)),
                Some(qubit(d - 1, fc + 1)),
                None,
                None,
            ];
            z_rows.push(vec![qubit(d - 1, fc), qubit(d - 1, fc + 1)]);
            z_corners.push(corners);
        }
    }

    let to_matrix = |rows: &[Vec<usize>]| {
        let mut m = BitMatrix::zeros(rows.len(), n);
        for (i, support) in rows.iter().enumerate() {
            for &q in support {
                m.set(i, q, true);
            }
        }
        m
    };
    let hx = to_matrix(&x_rows);
    let hz = to_matrix(&z_rows);

    // Logical operators: middle row (X) and middle column (Z).
    let mid = (d - 1) / 2;
    let mut lx = BitMatrix::zeros(1, n);
    let mut lz = BitMatrix::zeros(1, n);
    for c in 0..d {
        lx.set(0, qubit(mid, c), true);
    }
    for r in 0..d {
        lz.set(0, qubit(r, mid), true);
    }

    let code = CssCode::with_known_distance(format!("surface_d{d}"), hx, hz, d)
        .expect("rotated surface code construction must be a valid CSS code")
        .with_logicals(lx, lz)
        .expect("surface code string logicals must be valid");
    let layout = SurfaceLayout {
        distance: d,
        x_corners,
        z_corners,
    };
    (code, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_gf2::BitVec;
    use std::collections::HashSet;

    fn row_set(m: &BitMatrix) -> HashSet<Vec<usize>> {
        m.rows_iter().map(|r| r.ones().collect()).collect()
    }

    #[test]
    fn d3_matches_paper_matrices() {
        let code = rotated_surface_code(3);
        let paper_hx = BitMatrix::from_rows_u8(&[
            &[1, 1, 0, 1, 1, 0, 0, 0, 0],
            &[0, 0, 0, 0, 1, 1, 0, 1, 1],
            &[0, 0, 0, 1, 0, 0, 1, 0, 0],
            &[0, 0, 1, 0, 0, 1, 0, 0, 0],
        ]);
        let paper_hz = BitMatrix::from_rows_u8(&[
            &[0, 1, 1, 0, 1, 1, 0, 0, 0],
            &[0, 0, 0, 1, 1, 0, 1, 1, 0],
            &[1, 1, 0, 0, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 0, 0, 0, 1, 1],
        ]);
        assert_eq!(row_set(code.hx()), row_set(&paper_hx));
        assert_eq!(row_set(code.hz()), row_set(&paper_hz));
        // Paper's logical operators (Section 2.4).
        assert_eq!(
            code.lx().row(0),
            &BitVec::from_u8(&[0, 0, 0, 1, 1, 1, 0, 0, 0])
        );
        assert_eq!(
            code.lz().row(0),
            &BitVec::from_u8(&[0, 1, 0, 0, 1, 0, 0, 1, 0])
        );
    }

    #[test]
    fn parameters_scale_with_distance() {
        for d in [2, 3, 5, 7, 9] {
            let code = rotated_surface_code(d);
            assert_eq!(code.n(), d * d, "n for d={d}");
            assert_eq!(code.k(), 1, "k for d={d}");
            assert_eq!(
                code.num_stabilizers(),
                d * d - 1,
                "stabilizer count for d={d}"
            );
            assert_eq!(code.known_distance(), Some(d));
            assert!(code.max_stabilizer_weight() <= 4);
        }
    }

    #[test]
    fn stabilizer_counts_split_evenly_for_odd_d() {
        for d in [3, 5, 7, 9, 11] {
            let code = rotated_surface_code(d);
            assert_eq!(code.num_x_stabilizers(), (d * d - 1) / 2);
            assert_eq!(code.num_z_stabilizers(), (d * d - 1) / 2);
        }
    }

    #[test]
    fn layout_corners_match_check_matrix_supports() {
        let (code, layout) = rotated_surface_code_with_layout(5);
        for (i, corners) in layout.x_corners.iter().enumerate() {
            let from_layout: HashSet<usize> = corners.iter().flatten().copied().collect();
            let from_matrix: HashSet<usize> = code
                .stabilizer_support(StabilizerKind::X, i)
                .into_iter()
                .collect();
            assert_eq!(from_layout, from_matrix);
        }
        for (i, corners) in layout.z_corners.iter().enumerate() {
            let from_layout: HashSet<usize> = corners.iter().flatten().copied().collect();
            let from_matrix: HashSet<usize> = code
                .stabilizer_support(StabilizerKind::Z, i)
                .into_iter()
                .collect();
            assert_eq!(from_layout, from_matrix);
        }
    }

    #[test]
    fn ordered_support_respects_corner_order_and_skips_missing() {
        let (_, layout) = rotated_surface_code_with_layout(3);
        // First X stabilizer is the bulk face at (0, 0) with corners 0, 1, 3, 4.
        let order = [Corner::Nw, Corner::Sw, Corner::Ne, Corner::Se];
        assert_eq!(
            layout.ordered_support(StabilizerKind::X, 0, &order),
            vec![0, 3, 1, 4]
        );
        // Boundary X stabilizers have only two corners.
        let boundary = layout.ordered_support(StabilizerKind::X, 2, &order);
        assert_eq!(boundary.len(), 2);
    }

    #[test]
    fn logicals_anticommute_once() {
        for d in [3, 5, 7] {
            let code = rotated_surface_code(d);
            let overlap = code.lx().row(0).and(code.lz().row(0)).weight();
            assert_eq!(overlap % 2, 1, "logicals must anticommute for d={d}");
            assert_eq!(code.lx().row(0).weight(), d);
            assert_eq!(code.lz().row(0).weight(), d);
        }
    }
}
