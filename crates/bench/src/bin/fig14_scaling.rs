//! Figure 14: scaling of the ambiguous-subgraph MaxSAT formulation — model size and solve
//! time as a function of the weight (d_eff proxy) of the logical error found.

use prophunt::ambiguity::{find_ambiguous_subgraph, DecodingGraph};
use prophunt::minweight::min_weight_logical_error;
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::MemoryBasis;
use prophunt_qec::surface::rotated_surface_code_with_layout;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    let full = std::env::var("PROPHUNT_FULL").is_ok();
    let samples = if full { 1000 } else { 60 };
    let distances: &[usize] = if full { &[3, 5, 7] } else { &[3, 5] };
    println!("Figure 14: subgraph MaxSAT scaling ({samples} samples per code)");
    println!(
        "{:<12} {:>7} {:>9} {:>12} {:>12} {:>12}",
        "code", "weight", "samples", "vars(avg)", "clauses(avg)", "time(avg ms)"
    );
    for &d in distances {
        let (code, layout) = rotated_surface_code_with_layout(d);
        // The poor schedule exposes a range of logical-error weights as optimization
        // would encounter them.
        let schedule = ScheduleSpec::surface_poor(&code, &layout);
        let graph = DecodingGraph::build(&code, &schedule, d.min(3), MemoryBasis::Z, 1e-3).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        use std::collections::BTreeMap;
        let mut by_weight: BTreeMap<usize, (usize, f64, f64, f64)> = BTreeMap::new();
        for _ in 0..samples {
            let Some(sub) = find_ambiguous_subgraph(&graph, &mut rng, 80) else {
                continue;
            };
            let start = std::time::Instant::now();
            let Some(sol) = min_weight_logical_error(&sub, Duration::from_secs(30)) else {
                continue;
            };
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let entry = by_weight.entry(sol.weight).or_insert((0, 0.0, 0.0, 0.0));
            entry.0 += 1;
            entry.1 += sol.stats.num_variables as f64;
            entry.2 += sol.stats.num_hard_clauses as f64;
            entry.3 += ms;
        }
        for (weight, (count, vars, clauses, ms)) in by_weight {
            println!(
                "{:<12} {:>7} {:>9} {:>12.0} {:>12.0} {:>12.2}",
                format!("surface_d{d}"),
                weight,
                count,
                vars / count as f64,
                clauses / count as f64,
                ms / count as f64
            );
        }
    }
}
