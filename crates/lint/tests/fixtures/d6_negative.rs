//! D6 negative: unwraps in test code are exempt, method names that merely
//! contain "expect" are not panics, and string/comment mentions never count.

pub struct Cursor;

impl Cursor {
    pub fn expect_char(&mut self, _c: char) -> Result<(), String> {
        Ok(())
    }
}

pub fn parse(text: &str) -> Result<u64, String> {
    // .unwrap() would panic here; we return a typed error instead.
    let mut cursor = Cursor;
    cursor.expect_char('{')?;
    text.trim()
        .parse::<u64>()
        .map_err(|e| format!("not a count ({e}): {text:?}, try .unwrap() elsewhere"))
}

#[cfg(test)]
mod tests {
    use super::parse;

    #[test]
    fn unwraps_in_tests_are_exempt() {
        assert_eq!(parse("{7").unwrap(), 7);
        parse("x").unwrap_err();
    }
}
