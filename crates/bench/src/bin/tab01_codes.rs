//! Table 1: the benchmark code suite, with the substituted LDPC instances' actual
//! parameters computed on the fly.

use prophunt_bench::{benchmark_suite, write_bench_report};
use prophunt_formats::report::ReportRecord;
use prophunt_formats::Json;
use prophunt_qec::distance::code_parameters;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let include_large = std::env::var("PROPHUNT_FULL").is_ok();
    let mut rng = StdRng::seed_from_u64(1);
    println!("Table 1: benchmark QEC codes (substitutions documented in README.md)");
    println!(
        "{:<14} {:>5} {:>4} {:>6} {:>12}",
        "code", "n", "k", "d_est", "max weight"
    );
    let mut records = Vec::new();
    for bench in benchmark_suite(include_large) {
        let params = code_parameters(&bench.code, 150, &mut rng);
        println!(
            "{:<14} {:>5} {:>4} {:>6} {:>12}",
            bench.code.name(),
            params.n,
            params.k,
            params.d_estimate,
            params.max_stabilizer_weight
        );
        records.push(ReportRecord::Table {
            name: "code_parameters".into(),
            fields: vec![
                ("code".into(), Json::Str(bench.code.name().to_string())),
                ("n".into(), Json::UInt(params.n as u64)),
                ("k".into(), Json::UInt(params.k as u64)),
                ("d_est".into(), Json::UInt(params.d_estimate as u64)),
                (
                    "max_weight".into(),
                    Json::UInt(params.max_stabilizer_weight as u64),
                ),
            ],
        });
    }
    let path = write_bench_report("tab01_codes", &records).expect("write benchmark report");
    println!("data written to {}", path.display());
}
