//! Detector error models: static propagation of every circuit fault into the
//! circuit-level check matrix `H` and observable matrix `L`, plus Monte-Carlo sampling.
//!
//! This is the circuit-level model of the paper's Section 2.7: each elementary fault the
//! noise model can inject is propagated (deterministically, using the CNOT propagation
//! rules of Figure 3b) through the remainder of the circuit, and recorded by the set of
//! detectors and logical observables it flips. Faults with identical signatures are
//! merged into a single *error mechanism* with a combined probability. The resulting
//! bipartite structure (error mechanisms vs. detectors) is exactly the decoding graph
//! PropHunt's ambiguity analysis walks over.

use crate::builder::MemoryExperiment;
use crate::noise::{Fault, NoiseModel, SparsePauli};
use crate::ops::Op;
use prophunt_gf2::{BitMatrix, BitVec};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// The circuit fault (or one of several merged faults) behind an [`ErrorMechanism`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSource {
    /// Moment index of the faulty operation.
    pub moment: usize,
    /// The operation the fault is attached to.
    pub op: Op,
    /// The injected Pauli error.
    pub error: SparsePauli,
}

/// One column of the detector error model: a set of detectors and observables flipped
/// together with some probability.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorMechanism {
    /// Probability that this mechanism fires in one shot.
    pub probability: f64,
    /// Sorted detector indices flipped by the mechanism.
    pub detectors: Vec<usize>,
    /// Sorted observable indices flipped by the mechanism.
    pub observables: Vec<usize>,
    /// The circuit faults merged into this mechanism.
    pub sources: Vec<FaultSource>,
}

impl ErrorMechanism {
    /// Returns `true` if the mechanism flips at least one logical observable.
    pub fn flips_observable(&self) -> bool {
        !self.observables.is_empty()
    }
}

/// The detector error model of a noisy memory experiment.
///
/// Rows of [`DetectorErrorModel::h_matrix`] are detectors, columns are error mechanisms;
/// rows of [`DetectorErrorModel::l_matrix`] are logical observables.
#[derive(Debug, Clone)]
pub struct DetectorErrorModel {
    num_detectors: usize,
    num_observables: usize,
    errors: Vec<ErrorMechanism>,
    /// Flattened mechanism tables shared by every [`DemSampler`] over this
    /// model, built on first use: [`DetectorErrorModel::sampler`] is called
    /// once per Monte-Carlo *chunk*, so it must not copy the mechanism list.
    sampler_tables: std::sync::OnceLock<std::sync::Arc<SamplerTables>>,
}

impl DetectorErrorModel {
    /// Builds the detector error model of `experiment` under `noise` by enumerating and
    /// propagating every elementary fault.
    pub fn from_experiment(experiment: &MemoryExperiment, noise: &NoiseModel) -> Self {
        let faults = noise.enumerate_faults(&experiment.circuit);
        Self::from_faults(experiment, &faults)
    }

    /// Builds a detector error model from an explicit fault list (used by tests and by
    /// effective-distance analyses that want unit-probability faults).
    pub fn from_faults(experiment: &MemoryExperiment, faults: &[Fault]) -> Self {
        let circuit = &experiment.circuit;
        let num_qubits = circuit.num_qubits();

        // Measurement index of each (moment, op_index).
        let mut meas_index: Vec<Vec<usize>> = Vec::with_capacity(circuit.num_moments());
        let mut counter = 0usize;
        for moment in circuit.moments() {
            let mut row = Vec::with_capacity(moment.len());
            for op in moment {
                if op.is_measurement() {
                    row.push(counter);
                    counter += 1;
                } else {
                    row.push(usize::MAX);
                }
            }
            meas_index.push(row);
        }

        // Membership maps from measurement index to detectors / observables.
        let mut meas_to_detectors: Vec<Vec<usize>> = vec![Vec::new(); counter];
        for (d, members) in experiment.detectors.iter().enumerate() {
            for &m in members {
                meas_to_detectors[m].push(d);
            }
        }
        let mut meas_to_observables: Vec<Vec<usize>> = vec![Vec::new(); counter];
        for (o, members) in experiment.observables.iter().enumerate() {
            for &m in members {
                meas_to_observables[m].push(o);
            }
        }

        let mut frame_x = vec![false; num_qubits];
        let mut frame_z = vec![false; num_qubits];
        let mut touched: Vec<usize> = Vec::new();
        let mut merged: HashMap<(Vec<usize>, Vec<usize>), usize> = HashMap::new();
        let mut errors: Vec<ErrorMechanism> = Vec::new();

        for fault in faults {
            // Inject the error.
            for &(q, pauli) in &fault.error {
                if pauli.has_x() {
                    frame_x[q] = !frame_x[q];
                }
                if pauli.has_z() {
                    frame_z[q] = !frame_z[q];
                }
                touched.push(q);
            }

            // Propagate through the rest of the circuit, recording measurement flips.
            let mut flipped_meas: Vec<usize> = Vec::new();
            let start_op = if fault.pre_op {
                fault.op_index
            } else {
                fault.op_index.saturating_add(1)
            };
            for mi in fault.moment..circuit.num_moments() {
                let ops = circuit.moment(mi);
                let first = if mi == fault.moment {
                    start_op.min(ops.len())
                } else {
                    0
                };
                for (oi, op) in ops.iter().enumerate().skip(first) {
                    match *op {
                        Op::Cnot(c, t) => {
                            if frame_x[c] {
                                frame_x[t] = !frame_x[t];
                                touched.push(t);
                            }
                            if frame_z[t] {
                                frame_z[c] = !frame_z[c];
                                touched.push(c);
                            }
                        }
                        Op::H(q) => {
                            let (x, z) = (frame_x[q], frame_z[q]);
                            frame_x[q] = z;
                            frame_z[q] = x;
                        }
                        Op::ResetZ(q) | Op::ResetX(q) => {
                            frame_x[q] = false;
                            frame_z[q] = false;
                        }
                        Op::MeasureZ(q) => {
                            if frame_x[q] {
                                flipped_meas.push(meas_index[mi][oi]);
                            }
                        }
                        Op::MeasureX(q) => {
                            if frame_z[q] {
                                flipped_meas.push(meas_index[mi][oi]);
                            }
                        }
                    }
                }
            }

            // Clear the frame for the next fault.
            for &q in &touched {
                frame_x[q] = false;
                frame_z[q] = false;
            }
            touched.clear();

            // Convert measurement flips into detector / observable flips. BTreeMaps
            // keep the parity sets sorted by index, so the collected vectors come
            // out in canonical order directly.
            let mut det_parity: BTreeMap<usize, bool> = BTreeMap::new();
            let mut obs_parity: BTreeMap<usize, bool> = BTreeMap::new();
            for &m in &flipped_meas {
                for &d in &meas_to_detectors[m] {
                    *det_parity.entry(d).or_insert(false) ^= true;
                }
                for &o in &meas_to_observables[m] {
                    *obs_parity.entry(o).or_insert(false) ^= true;
                }
            }
            let detectors: Vec<usize> = det_parity
                .into_iter()
                .filter_map(|(d, on)| on.then_some(d))
                .collect();
            let observables: Vec<usize> = obs_parity
                .into_iter()
                .filter_map(|(o, on)| on.then_some(o))
                .collect();
            if detectors.is_empty() && observables.is_empty() {
                continue;
            }

            let source = FaultSource {
                moment: fault.moment,
                op: fault.op,
                error: fault.error.clone(),
            };
            let key = (detectors.clone(), observables.clone());
            match merged.get(&key) {
                Some(&idx) => {
                    let mech = &mut errors[idx];
                    mech.probability = mech.probability * (1.0 - fault.probability)
                        + fault.probability * (1.0 - mech.probability);
                    mech.sources.push(source);
                }
                None => {
                    merged.insert(key, errors.len());
                    errors.push(ErrorMechanism {
                        probability: fault.probability,
                        detectors,
                        observables,
                        sources: vec![source],
                    });
                }
            }
        }

        DetectorErrorModel {
            num_detectors: experiment.num_detectors(),
            num_observables: experiment.num_observables(),
            errors,
            sampler_tables: std::sync::OnceLock::new(),
        }
    }

    /// Rebuilds a detector error model from its serialized parts: detector/observable
    /// counts and an explicit mechanism list. This is the constructor behind the
    /// `prophunt-formats` `.dem` parser; mechanisms reconstructed from a file carry no
    /// [`FaultSource`]s (the file format does not record circuit provenance).
    ///
    /// Detector and observable index lists are sorted; mechanisms are kept in the given
    /// order and are *not* merged by signature.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CircuitError::InvalidErrorModel`] if any mechanism names a detector
    /// `>= num_detectors` or observable `>= num_observables`, repeats an index, or has a
    /// probability outside `[0, 1]`.
    pub fn from_parts(
        num_detectors: usize,
        num_observables: usize,
        mut errors: Vec<ErrorMechanism>,
    ) -> Result<Self, crate::CircuitError> {
        let invalid = |reason: String| crate::CircuitError::InvalidErrorModel { reason };
        for (i, err) in errors.iter_mut().enumerate() {
            if !(0.0..=1.0).contains(&err.probability) {
                return Err(invalid(format!(
                    "error mechanism {i} has probability {} outside [0, 1]",
                    err.probability
                )));
            }
            err.detectors.sort_unstable();
            err.observables.sort_unstable();
            if err.detectors.windows(2).any(|w| w[0] == w[1]) {
                return Err(invalid(format!("error mechanism {i} repeats a detector")));
            }
            if err.observables.windows(2).any(|w| w[0] == w[1]) {
                return Err(invalid(format!(
                    "error mechanism {i} repeats an observable"
                )));
            }
            if let Some(&d) = err.detectors.last() {
                if d >= num_detectors {
                    return Err(invalid(format!(
                        "error mechanism {i} flips detector {d} but the model has {num_detectors}"
                    )));
                }
            }
            if let Some(&o) = err.observables.last() {
                if o >= num_observables {
                    return Err(invalid(format!(
                        "error mechanism {i} flips observable {o} but the model has {num_observables}"
                    )));
                }
            }
        }
        Ok(DetectorErrorModel {
            num_detectors,
            num_observables,
            errors,
            sampler_tables: std::sync::OnceLock::new(),
        })
    }

    /// Returns `true` if `self` and `other` describe the same error distribution: equal
    /// detector/observable counts and, mechanism by mechanism *in order*, bit-identical
    /// probabilities and identical detector/observable signatures.
    ///
    /// Fault provenance ([`ErrorMechanism::sources`]) is deliberately ignored — it is
    /// what the `.dem` file format cannot carry, and it does not affect sampling or
    /// decoding. Two models equal under this predicate produce identical
    /// [`DemSampler`] streams for every seed.
    pub fn same_distribution(&self, other: &Self) -> bool {
        self.num_detectors == other.num_detectors
            && self.num_observables == other.num_observables
            && self.errors.len() == other.errors.len()
            && self.errors.iter().zip(other.errors.iter()).all(|(a, b)| {
                a.probability.to_bits() == b.probability.to_bits()
                    && a.detectors == b.detectors
                    && a.observables == b.observables
            })
    }

    /// Returns the number of detectors (rows of `H`).
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Returns the number of logical observables (rows of `L`).
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Returns the number of distinct error mechanisms (columns of `H` and `L`).
    pub fn num_errors(&self) -> usize {
        self.errors.len()
    }

    /// Returns the error mechanisms.
    pub fn errors(&self) -> &[ErrorMechanism] {
        &self.errors
    }

    /// Returns error mechanism `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn error(&self, index: usize) -> &ErrorMechanism {
        &self.errors[index]
    }

    /// Returns the circuit-level check matrix `H` (detectors × error mechanisms).
    pub fn h_matrix(&self) -> BitMatrix {
        let mut m = BitMatrix::zeros(self.num_detectors, self.errors.len());
        for (col, err) in self.errors.iter().enumerate() {
            for &d in &err.detectors {
                m.set(d, col, true);
            }
        }
        m
    }

    /// Returns the circuit-level observable matrix `L` (observables × error mechanisms).
    pub fn l_matrix(&self) -> BitMatrix {
        let mut m = BitMatrix::zeros(self.num_observables, self.errors.len());
        for (col, err) in self.errors.iter().enumerate() {
            for &o in &err.observables {
                m.set(o, col, true);
            }
        }
        m
    }

    /// Returns, for each detector, the indices of error mechanisms that flip it — the
    /// adjacency used by subgraph expansion and by matching-style decoders.
    pub fn detector_to_errors(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_detectors];
        for (col, err) in self.errors.iter().enumerate() {
            for &d in &err.detectors {
                out[d].push(col);
            }
        }
        out
    }

    /// Creates a Monte-Carlo sampler over this model with the given seed.
    ///
    /// The first call flattens the mechanism list into shared `SamplerTables`;
    /// every subsequent call is O(1) (an [`std::sync::Arc`] clone plus RNG
    /// seeding). The estimation engines create one sampler per chunk, so this
    /// must stay cheap.
    pub fn sampler(&self, seed: u64) -> DemSampler {
        let tables = self
            .sampler_tables
            .get_or_init(|| std::sync::Arc::new(SamplerTables::build(&self.errors)));
        DemSampler {
            tables: std::sync::Arc::clone(tables),
            num_detectors: self.num_detectors,
            num_observables: self.num_observables,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

/// The mechanism list of a [`DetectorErrorModel`] flattened into CSR-style
/// arrays for sampling: per-mechanism probability plus the concatenated
/// detector and observable signatures. Built once per model and shared by all
/// its samplers.
#[derive(Debug)]
struct SamplerTables {
    probabilities: Vec<f64>,
    det_offsets: Vec<u32>,
    det_indices: Vec<u32>,
    obs_offsets: Vec<u32>,
    obs_indices: Vec<u32>,
    /// Mechanisms grouped by bit-identical probability, for the frame engine's
    /// grouped sampling paths (frame XORs commute, so sampling mechanisms in
    /// group order draws the same per-mechanism law as mechanism order).
    groups: Vec<SampleGroup>,
}

/// A set of mechanisms sharing one probability, with the sampling strategy the
/// frame engine uses for it.
#[derive(Debug)]
struct SampleGroup {
    probability: f64,
    /// `1 / ln(1 - p)` for the geometric-skip path, chosen for rare
    /// mechanisms; `None` selects the per-mechanism Bernoulli-word path.
    inv_ln_q: Option<f64>,
    /// Mechanism indices, ascending.
    mechs: Vec<u32>,
}

/// Below this probability the frame engine samples a group by geometric
/// skipping over (mechanism, lane) trials — expected cost proportional to the
/// number of *fired* events — instead of drawing a Bernoulli word per
/// mechanism.
const GEOMETRIC_SKIP_MAX_P: f64 = 0.02;

impl SamplerTables {
    fn build(errors: &[ErrorMechanism]) -> Self {
        let mut tables = SamplerTables {
            probabilities: Vec::with_capacity(errors.len()),
            det_offsets: Vec::with_capacity(errors.len() + 1),
            det_indices: Vec::new(),
            obs_offsets: Vec::with_capacity(errors.len() + 1),
            obs_indices: Vec::new(),
            groups: Vec::new(),
        };
        tables.det_offsets.push(0);
        tables.obs_offsets.push(0);
        let mut group_of: HashMap<u64, usize> = HashMap::new();
        for (i, err) in errors.iter().enumerate() {
            let p = err.probability;
            tables.probabilities.push(p);
            for &d in &err.detectors {
                tables
                    .det_indices
                    .push(u32::try_from(d).expect("detector index fits u32"));
            }
            for &o in &err.observables {
                tables
                    .obs_indices
                    .push(u32::try_from(o).expect("observable index fits u32"));
            }
            tables.det_offsets.push(tables.det_indices.len() as u32);
            tables.obs_offsets.push(tables.obs_indices.len() as u32);
            if p <= 0.0 {
                // Never fires; keep it out of the frame path entirely.
                continue;
            }
            let gi = *group_of.entry(p.to_bits()).or_insert_with(|| {
                let inv_ln_q = (p < GEOMETRIC_SKIP_MAX_P).then(|| (1.0 - p).ln().recip());
                tables.groups.push(SampleGroup {
                    probability: p,
                    inv_ln_q,
                    mechs: Vec::new(),
                });
                tables.groups.len() - 1
            });
            tables.groups[gi]
                .mechs
                .push(u32::try_from(i).expect("mechanism index fits u32"));
        }
        tables
    }

    fn detectors(&self, i: usize) -> &[u32] {
        &self.det_indices[self.det_offsets[i] as usize..self.det_offsets[i + 1] as usize]
    }

    fn observables(&self, i: usize) -> &[u32] {
        &self.obs_indices[self.obs_offsets[i] as usize..self.obs_offsets[i + 1] as usize]
    }
}

/// Samples detector/observable outcomes from a [`DetectorErrorModel`].
///
/// Sampling happens directly in detector space: each error mechanism fires independently
/// with its probability and XORs its detector and observable signature into the shot,
/// which is equivalent to Pauli-frame simulation of the underlying circuit noise.
#[derive(Debug, Clone)]
pub struct DemSampler {
    tables: std::sync::Arc<SamplerTables>,
    num_detectors: usize,
    num_observables: usize,
    rng: SmallRng,
}

impl DemSampler {
    /// Samples one shot, returning `(detector outcomes, observable flips, fired errors)`.
    pub fn sample_with_errors(&mut self) -> (BitVec, BitVec, Vec<usize>) {
        let mut dets = BitVec::zeros(self.num_detectors);
        let mut obs = BitVec::zeros(self.num_observables);
        let mut fired = Vec::new();
        let tables = &self.tables;
        for (i, &p) in tables.probabilities.iter().enumerate() {
            if self.rng.gen_bool(p) {
                fired.push(i);
                for &d in tables.detectors(i) {
                    dets.flip(d as usize);
                }
                for &o in tables.observables(i) {
                    obs.flip(o as usize);
                }
            }
        }
        (dets, obs, fired)
    }

    /// Samples one shot, returning `(detector outcomes, observable flips)`.
    pub fn sample(&mut self) -> (BitVec, BitVec) {
        let (d, o, _) = self.sample_with_errors();
        (d, o)
    }

    /// Samples one shot into caller-provided buffers, avoiding the per-shot
    /// allocations of [`DemSampler::sample`].
    ///
    /// Draws exactly the same RNG stream as [`DemSampler::sample`] (one
    /// [`Rng::gen_bool`] per mechanism, in mechanism order), so a sampler
    /// advanced through either method produces identical shots. The buffers are
    /// cleared before sampling.
    ///
    /// # Panics
    ///
    /// Panics if `dets` / `obs` do not have exactly `num_detectors` /
    /// `num_observables` bits.
    pub fn sample_into(&mut self, dets: &mut BitVec, obs: &mut BitVec) {
        assert_eq!(dets.len(), self.num_detectors, "detector buffer length");
        assert_eq!(obs.len(), self.num_observables, "observable buffer length");
        dets.clear();
        obs.clear();
        let tables = &self.tables;
        for (i, &p) in tables.probabilities.iter().enumerate() {
            if self.rng.gen_bool(p) {
                for &d in tables.detectors(i) {
                    dets.flip(d as usize);
                }
                for &o in tables.observables(i) {
                    obs.flip(o as usize);
                }
            }
        }
    }

    /// Samples up to 64 shots at once into detector-major *frame* buffers: bit
    /// `lane` of `det_frames[d]` (resp. `obs_frames[o]`) is detector `d`
    /// (observable `o`) of shot-lane `lane`.
    ///
    /// This is the bit-parallel sampling kernel of the frame engine.
    /// Mechanisms are visited grouped by probability (frame XORs commute, so
    /// the sampled law is unchanged by the reordering), and each group uses the
    /// cheaper of two strategies:
    ///
    /// - *rare* groups (`p < GEOMETRIC_SKIP_MAX_P`) geometrically skip
    ///   across the group's (mechanism, lane) trial sequence, so the expected
    ///   cost is proportional to the number of events that actually *fire*
    ///   rather than to the mechanism count;
    /// - the remaining groups draw a fired-lane *word* per mechanism — one
    ///   exact `Bernoulli(p)` bit per lane in expected `~log2(lanes)` RNG
    ///   draws, by comparing each lane's implicit uniform variate against the
    ///   binary expansion of `p`.
    ///
    /// Fired events XOR the mechanism's detector and observable signature into
    /// the fired lanes. The RNG stream is therefore laid out group- and
    /// mechanism-major, unlike the shot-major stream of [`DemSampler::sample`]
    /// — each layout is deterministic per seed, but the two engines produce
    /// different (equally valid) shot sequences.
    ///
    /// The frame buffers are cleared before sampling; lanes `>= lanes` stay
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or greater than 64, or if the buffer lengths
    /// differ from `num_detectors` / `num_observables`.
    pub fn sample_frames(&mut self, lanes: usize, det_frames: &mut [u64], obs_frames: &mut [u64]) {
        assert!((1..=64).contains(&lanes), "lanes must be in 1..=64");
        assert_eq!(det_frames.len(), self.num_detectors, "detector frame rows");
        assert_eq!(
            obs_frames.len(),
            self.num_observables,
            "observable frame rows"
        );
        det_frames.fill(0);
        obs_frames.fill(0);
        let lane_mask = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        let tables = &self.tables;
        for group in &tables.groups {
            if let Some(inv_ln_q) = group.inv_ln_q {
                // Geometric skipping: trial index t runs mechanism-major over
                // the group's (mechanism, lane) pairs; each skip length is the
                // number of non-firing trials before the next firing one.
                let total = group.mechs.len() as u64 * lanes as u64;
                let mut t = 0u64;
                loop {
                    // 53 high bits -> uniform f64 in (0, 1].
                    let u =
                        1.0 - ((self.rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                    t = t.saturating_add((u.ln() * inv_ln_q) as u64);
                    if t >= total {
                        break;
                    }
                    let mech = group.mechs[t as usize / lanes] as usize;
                    let fired = 1u64 << (t as usize % lanes);
                    for &d in tables.detectors(mech) {
                        det_frames[d as usize] ^= fired;
                    }
                    for &o in tables.observables(mech) {
                        obs_frames[o as usize] ^= fired;
                    }
                    t += 1;
                }
            } else {
                for &mech in &group.mechs {
                    let fired = bernoulli_word(&mut self.rng, group.probability, lane_mask);
                    if fired != 0 {
                        for &d in tables.detectors(mech as usize) {
                            det_frames[d as usize] ^= fired;
                        }
                        for &o in tables.observables(mech as usize) {
                            obs_frames[o as usize] ^= fired;
                        }
                    }
                }
            }
        }
    }

    /// Returns the number of detectors per shot.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Returns the number of observables per shot.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }
}

/// Draws a word of independent exact `Bernoulli(p)` bits, one per set bit of
/// `lane_mask` (clear lanes stay 0).
///
/// Each lane conceptually holds a uniform variate `U` built from the lane's
/// bits of successive `u64` draws (most significant first) and fires iff
/// `U < p`. Scanning the binary expansion of `p` one bit at a time decides
/// every lane as soon as its `U` prefix differs from the prefix of `p`:
/// each round halves the undecided set in expectation, so the expected number
/// of draws is `~log2(lanes) + 2` regardless of `p`. Every `f64` in `[0, 1)`
/// is dyadic, so lanes still undecided when the expansion is exhausted have
/// `U >= p` and do not fire — the per-lane law is *exactly* `Bernoulli(p)`,
/// not an approximation.
fn bernoulli_word(rng: &mut SmallRng, p: f64, lane_mask: u64) -> u64 {
    if p >= 1.0 {
        return lane_mask;
    }
    let mut fired = 0u64;
    let mut undecided = lane_mask;
    // Remaining binary expansion of p: doubling and subtracting 1 are exact
    // on f64, so the bits come out unrounded.
    let mut rest = p;
    while rest > 0.0 && undecided != 0 {
        let draw = rng.next_u64();
        rest *= 2.0;
        if rest >= 1.0 {
            // p-bit 1: lanes whose U-bit is 0 have U < p.
            rest -= 1.0;
            fired |= undecided & !draw;
            undecided &= draw;
        } else {
            // p-bit 0: lanes whose U-bit is 1 have U > p.
            undecided &= !draw;
        }
    }
    fired
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MemoryBasis, MemoryExperiment};
    use crate::noise::Pauli;
    use crate::schedule::ScheduleSpec;
    use prophunt_qec::small::quantum_repetition_code;
    use prophunt_qec::surface::rotated_surface_code_with_layout;
    use prophunt_qec::StabilizerKind;

    fn d3_experiment(rounds: usize) -> (prophunt_qec::CssCode, MemoryExperiment) {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, rounds, MemoryBasis::Z).unwrap();
        (code, exp)
    }

    #[test]
    fn noiseless_model_has_no_error_mechanisms() {
        let (_, exp) = d3_experiment(2);
        let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::noiseless());
        assert_eq!(dem.num_errors(), 0);
    }

    #[test]
    fn every_mechanism_flips_something_and_probabilities_are_sane() {
        let (_, exp) = d3_experiment(3);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3));
        assert!(dem.num_errors() > 100);
        for err in dem.errors() {
            assert!(!err.detectors.is_empty() || !err.observables.is_empty());
            assert!(err.probability > 0.0 && err.probability < 0.1);
            assert!(!err.sources.is_empty());
            assert!(err.detectors.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn mechanism_index_sets_are_sorted_and_extraction_is_reproducible() {
        // Regression pin for the det_parity/obs_parity HashMap -> BTreeMap
        // conversion: the per-mechanism index sets must come out of the parity
        // maps already in canonical ascending order (no post-sort pass exists any
        // more), and two independent extractions must agree mechanism-for-mechanism.
        let (_, exp) = d3_experiment(3);
        let noise = NoiseModel::uniform_depolarizing(1e-3);
        let dem_a = DetectorErrorModel::from_experiment(&exp, &noise);
        let dem_b = DetectorErrorModel::from_experiment(&exp, &noise);
        assert_eq!(dem_a.num_errors(), dem_b.num_errors());
        for (a, b) in dem_a.errors().iter().zip(dem_b.errors()) {
            assert!(a.detectors.windows(2).all(|w| w[0] < w[1]));
            assert!(a.observables.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(a.detectors, b.detectors);
            assert_eq!(a.observables, b.observables);
            assert_eq!(a.probability, b.probability);
        }
    }

    #[test]
    fn initial_data_x_error_flips_round_zero_z_detectors_and_observable() {
        let (code, exp) = d3_experiment(3);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3));
        // Find the mechanism sourced from an X error after the initial reset of data
        // qubit 4 (the central qubit, in the support of L_Z).
        let mech = dem
            .errors()
            .iter()
            .find(|e| {
                e.sources.iter().any(|s| {
                    s.moment == 0 && s.op == Op::ResetZ(4) && s.error == vec![(4, Pauli::X)]
                })
            })
            .expect("central data qubit reset fault must appear in the DEM");
        // It flips the two round-0 detectors of the Z stabilizers containing qubit 4 and
        // the logical observable.
        assert_eq!(mech.detectors.len(), 2);
        for &d in &mech.detectors {
            let info = exp.detector_info[d];
            assert_eq!(info.round, 0);
            let (kind, index) = exp.schedule.kind_index(info.stabilizer);
            assert_eq!(kind, StabilizerKind::Z);
            assert!(code
                .stabilizer_support(StabilizerKind::Z, index)
                .contains(&4));
        }
        assert_eq!(mech.observables, vec![0]);
    }

    #[test]
    fn ancilla_measurement_flip_gives_time_pair() {
        let (_, exp) = d3_experiment(4);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3));
        // A measurement flip on a Z ancilla in a middle round flips exactly the two
        // detectors comparing that round to its neighbours, and no observable.
        let mech = dem
            .errors()
            .iter()
            .find(|e| {
                e.sources.iter().any(|s| {
                    matches!(s.op, Op::MeasureZ(q) if q >= 9)
                        && exp.round_of_moment(s.moment) == Some(1)
                        && s.error.len() == 1
                })
            })
            .expect("ancilla measurement flip must appear");
        assert_eq!(mech.detectors.len(), 2);
        assert!(mech.observables.is_empty());
        let rounds: Vec<usize> = mech
            .detectors
            .iter()
            .map(|&d| exp.detector_info[d].round)
            .collect();
        assert_eq!(rounds, vec![1, 2]);
    }

    #[test]
    fn h_and_l_matrices_have_matching_shapes() {
        let (_, exp) = d3_experiment(2);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(2e-3));
        let h = dem.h_matrix();
        let l = dem.l_matrix();
        assert_eq!(h.num_rows(), exp.num_detectors());
        assert_eq!(h.num_cols(), dem.num_errors());
        assert_eq!(l.num_rows(), 1);
        assert_eq!(l.num_cols(), dem.num_errors());
        // detector_to_errors is the transpose adjacency of H.
        let adj = dem.detector_to_errors();
        for (d, errs) in adj.iter().enumerate() {
            for &e in errs {
                assert!(h.get(d, e));
            }
        }
    }

    #[test]
    fn no_single_mechanism_is_an_undetected_logical_error_for_good_schedule() {
        // With a valid schedule and d = 3, no single fault may flip the observable while
        // flipping no detector (that would mean d_eff = 1).
        let (_, exp) = d3_experiment(3);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3));
        for err in dem.errors() {
            assert!(
                !(err.detectors.is_empty() && err.flips_observable()),
                "found an undetectable single-fault logical error: {err:?}"
            );
        }
    }

    #[test]
    fn repetition_code_dem_is_a_repetition_decoding_graph() {
        let code = quantum_repetition_code(5);
        let schedule = ScheduleSpec::coloration(&code);
        let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3));
        // Every mechanism flips at most 2 detectors (the decoding graph is matchable).
        for err in dem.errors() {
            assert!(
                err.detectors.len() <= 2,
                "repetition DEM must be graph-like: {err:?}"
            );
        }
    }

    #[test]
    fn sampler_is_deterministic_per_seed_and_zero_for_zero_noise() {
        let (_, exp) = d3_experiment(2);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(5e-3));
        let mut a = dem.sampler(42);
        let mut b = dem.sampler(42);
        for _ in 0..20 {
            assert_eq!(a.sample(), b.sample());
        }
        let noiseless = DetectorErrorModel::from_experiment(&exp, &NoiseModel::noiseless());
        let mut s = noiseless.sampler(1);
        let (d, o) = s.sample();
        assert!(d.is_zero() && o.is_zero());
    }

    #[test]
    fn sample_into_matches_the_allocating_path_shot_for_shot() {
        let (_, exp) = d3_experiment(3);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(8e-3));
        let mut a = dem.sampler(13);
        let mut b = dem.sampler(13);
        let mut dets = BitVec::zeros(dem.num_detectors());
        let mut obs = BitVec::zeros(dem.num_observables());
        for _ in 0..50 {
            let (want_d, want_o) = a.sample();
            b.sample_into(&mut dets, &mut obs);
            assert_eq!(dets, want_d);
            assert_eq!(obs, want_o);
        }
    }

    #[test]
    fn sample_frames_is_deterministic_and_respects_lane_count() {
        let (_, exp) = d3_experiment(3);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(2e-2));
        let mut det_a = vec![0u64; dem.num_detectors()];
        let mut obs_a = vec![0u64; dem.num_observables()];
        let mut det_b = det_a.clone();
        let mut obs_b = obs_a.clone();
        dem.sampler(7).sample_frames(64, &mut det_a, &mut obs_a);
        dem.sampler(7).sample_frames(64, &mut det_b, &mut obs_b);
        assert_eq!(det_a, det_b);
        assert_eq!(obs_a, obs_b);
        assert!(det_a.iter().any(|&w| w != 0), "noise must flip something");
        // A partial word leaves lanes >= `lanes` zero in every row.
        let mut det_c = vec![0u64; dem.num_detectors()];
        let mut obs_c = vec![0u64; dem.num_observables()];
        dem.sampler(7).sample_frames(5, &mut det_c, &mut obs_c);
        assert!(det_c.iter().chain(obs_c.iter()).all(|&w| w >> 5 == 0));
    }

    #[test]
    fn sample_frames_of_a_certain_mechanism_flips_its_signature_in_every_lane() {
        // A single mechanism with probability 1 must fire in every lane.
        let dem = DetectorErrorModel::from_parts(
            3,
            2,
            vec![ErrorMechanism {
                probability: 1.0,
                detectors: vec![0, 2],
                observables: vec![1],
                sources: Vec::new(),
            }],
        )
        .unwrap();
        let mut det = vec![0u64; 3];
        let mut obs = vec![0u64; 2];
        dem.sampler(0).sample_frames(64, &mut det, &mut obs);
        assert_eq!(det, vec![u64::MAX, 0, u64::MAX]);
        assert_eq!(obs, vec![0, u64::MAX]);
        dem.sampler(0).sample_frames(3, &mut det, &mut obs);
        assert_eq!(det, vec![0b111, 0, 0b111]);
        assert_eq!(obs, vec![0, 0b111]);
    }

    #[test]
    fn bernoulli_word_is_exact_at_the_endpoints_and_unbiased_in_between() {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(bernoulli_word(&mut rng, 0.0, u64::MAX), 0);
        assert_eq!(bernoulli_word(&mut rng, 1.0, u64::MAX), u64::MAX);
        assert_eq!(bernoulli_word(&mut rng, 1.0, 0b101), 0b101);
        // Clear lanes of the mask never fire.
        for _ in 0..100 {
            assert_eq!(bernoulli_word(&mut rng, 0.7, 0b1111) & !0b1111, 0);
        }
        // Empirical rate over many words tracks p to a few standard errors.
        for p in [0.001, 0.25, 0.5, 0.9] {
            let words = 4000usize;
            let ones: u32 = (0..words)
                .map(|_| bernoulli_word(&mut rng, p, u64::MAX).count_ones())
                .sum();
            let n = (words * 64) as f64;
            let rate = f64::from(ones) / n;
            let sigma = (p * (1.0 - p) / n).sqrt();
            assert!(
                (rate - p).abs() < 6.0 * sigma.max(1e-5),
                "p = {p}: empirical rate {rate} too far off"
            );
        }
    }

    #[test]
    fn frame_sampling_matches_scalar_sampling_statistics() {
        // The two engines draw different streams (and the frame path mixes
        // geometric skipping with Bernoulli words), but the per-shot law is the
        // same — so the mean number of flipped detectors must agree.
        let (_, exp) = d3_experiment(3);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(2e-2));
        let shots = 6400;
        let mut sampler = dem.sampler(13);
        let mut scalar_flips = 0usize;
        for _ in 0..shots {
            let (d, _) = sampler.sample();
            scalar_flips += d.weight();
        }
        let mut sampler = dem.sampler(99);
        let mut det = vec![0u64; dem.num_detectors()];
        let mut obs = vec![0u64; dem.num_observables()];
        let mut frame_flips = 0usize;
        for _ in 0..shots / 64 {
            sampler.sample_frames(64, &mut det, &mut obs);
            frame_flips += det.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        }
        let scalar_mean = scalar_flips as f64 / shots as f64;
        let frame_mean = frame_flips as f64 / shots as f64;
        assert!(
            (scalar_mean - frame_mean).abs() < 0.1 * scalar_mean,
            "scalar mean {scalar_mean} vs frame mean {frame_mean}"
        );
    }

    #[test]
    fn sampled_detector_rate_tracks_physical_error_rate() {
        let (_, exp) = d3_experiment(3);
        let p = 2e-2;
        let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p));
        let mut sampler = dem.sampler(7);
        let shots = 500;
        let mut flips = 0usize;
        for _ in 0..shots {
            let (d, _) = sampler.sample();
            flips += d.weight();
        }
        let mean = flips as f64 / shots as f64;
        // The expected number of flipped detectors per shot is of order
        // (total error probability); just check it is clearly nonzero and bounded.
        assert!(mean > 0.5 && mean < 50.0, "mean flipped detectors {mean}");
    }
}
