//! Frame-engine/scalar decode parity on identical error frames.
//!
//! The two estimation engines lay out the per-chunk RNG stream differently, so
//! they sample different shot sequences — but the *decode* stage must be
//! bit-identical: the frame engine's `decode_batch` over transposed frames has
//! to return exactly what the scalar path's per-shot `decode` returns on the
//! same syndromes. These proptests pin that on a matchable surface code (d3 and
//! d5) and on the non-matchable `bb_72_12` bivariate-bicycle code, for both the
//! batch-overriding decoders.

use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_decoders::{BpOsdDecoder, Decoder, UnionFindDecoder};
use prophunt_gf2::transpose_lane_words;
use prophunt_qec::product::bivariate_bicycle;
use prophunt_qec::surface::rotated_surface_code_with_layout;
use proptest::prelude::*;
use std::sync::OnceLock;

fn surface_dem(d: usize, p: f64) -> DetectorErrorModel {
    let (code, layout) = rotated_surface_code_with_layout(d);
    let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
    let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
    DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p))
}

fn bb_72_12_dem(p: f64) -> DetectorErrorModel {
    let code = bivariate_bicycle(
        6,
        6,
        &[(3, 0), (0, 1), (0, 2)],
        &[(0, 3), (1, 0), (2, 0)],
        "bb_72_12",
    );
    let schedule = ScheduleSpec::coloration(&code);
    let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
    DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p))
}

/// The test fixtures, built once: `(name, model, decoder)` triples. Error
/// rates are high enough that sampled frames regularly contain multi-error
/// shots (exercising the BP non-convergence → OSD fallback path).
type Fixture = (&'static str, DetectorErrorModel, Box<dyn Decoder>);

fn fixtures() -> &'static Vec<Fixture> {
    static FIXTURES: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let d3 = surface_dem(3, 2e-2);
        let d3_uf = surface_dem(3, 2e-2);
        let d5 = surface_dem(5, 8e-3);
        let bb = bb_72_12_dem(3e-3);
        vec![
            (
                "surface_d3/bposd",
                d3.clone(),
                Box::new(BpOsdDecoder::new(&d3)) as Box<dyn Decoder>,
            ),
            (
                "surface_d3/unionfind",
                d3_uf.clone(),
                Box::new(UnionFindDecoder::new(&d3_uf)),
            ),
            (
                "surface_d5/bposd",
                d5.clone(),
                Box::new(BpOsdDecoder::new(&d5)),
            ),
            (
                "bb_72_12/bposd",
                bb.clone(),
                Box::new(BpOsdDecoder::new(&bb)),
            ),
        ]
    })
}

proptest! {
    // Each case decodes up to 64 shots twice across four fixtures; a few cases
    // with random lane counts already cover partial and full words.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any seed and lane count, the frame pipeline's per-shot predictions
    /// (`sample_frames` → `transpose_lane_words` → `decode_batch`) are exactly
    /// the scalar `decode` of the same transposed syndromes.
    #[test]
    fn frame_pipeline_decodes_equal_the_scalar_path_per_shot(
        seed in any::<u64>(),
        lanes in 1usize..65,
    ) {
        for (name, dem, decoder) in fixtures() {
            let mut sampler = dem.sampler(seed);
            let mut det_frames = vec![0u64; dem.num_detectors()];
            let mut obs_frames = vec![0u64; dem.num_observables()];
            sampler.sample_frames(lanes, &mut det_frames, &mut obs_frames);
            let det_shots = transpose_lane_words(&det_frames, lanes);
            prop_assert_eq!(det_shots.len(), lanes);
            let batch = decoder.decode_batch(&det_shots);
            prop_assert_eq!(batch.len(), lanes);
            for (lane, shot) in det_shots.iter().enumerate() {
                let scalar = decoder.decode(shot);
                prop_assert_eq!(
                    &batch[lane], &scalar,
                    "{} seed {} lane {}/{} diverged", name, seed, lane, lanes
                );
            }
        }
    }
}
