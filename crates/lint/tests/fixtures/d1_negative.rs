//! D1 negative: Instant::now() appears only in comments, string literals and
//! test code, none of which may trigger the rule.

pub fn describe() -> &'static str {
    // A comment mentioning Instant::now() and SystemTime::now() is fine.
    "the old implementation called Instant::now() per shot"
}

pub fn raw_doc() -> &'static str {
    r#"even raw strings with SystemTime::now() inside are fine"#
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_inside_tests_is_exempt() {
        let start = Instant::now();
        assert!(start.elapsed().as_nanos() < u128::MAX);
    }
}
