//! Dense matrices over GF(2) and Gaussian-elimination based solvers.

use crate::{BitVec, Gf2Error};
use std::fmt;

/// A dense matrix over GF(2), stored as a vector of packed [`BitVec`] rows.
///
/// The matrix type is the workhorse of the PropHunt suite: parity-check matrices,
/// logical-observable matrices, circuit-level detector matrices and their submatrices
/// are all `BitMatrix` values. All mutating linear algebra (elimination, rank, solving)
/// operates on copies so the original matrices remain usable.
///
/// # Example
///
/// ```
/// use prophunt_gf2::BitMatrix;
///
/// let m = BitMatrix::from_rows_u8(&[&[1, 1, 0], &[0, 1, 1]]);
/// assert_eq!(m.rank(), 2);
/// // [1, 0, 1] = row0 + row1 is in the row space; [1, 0, 0] is not.
/// assert!(m.row_space_contains(&prophunt_gf2::BitVec::from_u8(&[1, 0, 1])));
/// assert!(!m.row_space_contains(&prophunt_gf2::BitVec::from_u8(&[1, 0, 0])));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: Vec<BitVec>,
    cols: usize,
}

impl BitMatrix {
    /// Creates an all-zero matrix with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows: vec![BitVec::zeros(cols); rows],
            cols,
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from rows of `0`/`1` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows_u8(rows: &[&[u8]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let rows: Vec<BitVec> = rows
            .iter()
            .map(|r| {
                assert_eq!(r.len(), cols, "all rows must have the same length");
                BitVec::from_u8(r)
            })
            .collect();
        BitMatrix { rows, cols }
    }

    /// Builds a matrix from owned [`BitVec`] rows.
    ///
    /// `cols` must be supplied explicitly so that a matrix with zero rows still knows its
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `cols`.
    pub fn from_rows(rows: Vec<BitVec>, cols: usize) -> Self {
        for r in &rows {
            assert_eq!(r.len(), cols, "row length must equal cols");
        }
        BitMatrix { rows, cols }
    }

    /// Builds a matrix of the given shape with ones at the listed `(row, col)` positions.
    pub fn from_entries(rows: usize, cols: usize, entries: &[(usize, usize)]) -> Self {
        let mut m = BitMatrix::zeros(rows, cols);
        for &(r, c) in entries {
            m.set(r, c, true);
        }
        m
    }

    /// Returns the number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Returns the number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix has no rows or no columns.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() || self.cols == 0
    }

    /// Returns the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.rows[r].get(c)
    }

    /// Sets the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.rows[r].set(c, value);
    }

    /// Returns a reference to row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.rows[r]
    }

    /// Returns an iterator over the rows.
    pub fn rows_iter(&self) -> impl Iterator<Item = &BitVec> {
        self.rows.iter()
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the number of columns.
    pub fn push_row(&mut self, row: BitVec) {
        assert_eq!(row.len(), self.cols, "row length must equal cols");
        self.rows.push(row);
    }

    /// Returns column `c` as a [`BitVec`] of length `num_rows`.
    pub fn column(&self, c: usize) -> BitVec {
        let mut v = BitVec::zeros(self.num_rows());
        for (i, row) in self.rows.iter().enumerate() {
            if row.get(c) {
                v.set(i, true);
            }
        }
        v
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.cols, self.num_rows());
        for (i, row) in self.rows.iter().enumerate() {
            for j in row.ones() {
                t.set(j, i, true);
            }
        }
        t
    }

    /// Horizontally concatenates `self` and `other` (`[self | other]`).
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::DimensionMismatch`] if the row counts differ.
    pub fn hstack(&self, other: &BitMatrix) -> Result<BitMatrix, Gf2Error> {
        if self.num_rows() != other.num_rows() {
            return Err(Gf2Error::DimensionMismatch {
                left: self.num_rows(),
                right: other.num_rows(),
            });
        }
        let rows = self
            .rows
            .iter()
            .zip(other.rows.iter())
            .map(|(a, b)| a.concat(b))
            .collect();
        Ok(BitMatrix {
            rows,
            cols: self.cols + other.cols,
        })
    }

    /// Vertically concatenates `self` and `other` (`[self; other]`).
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::DimensionMismatch`] if the column counts differ.
    pub fn vstack(&self, other: &BitMatrix) -> Result<BitMatrix, Gf2Error> {
        if self.cols != other.cols {
            return Err(Gf2Error::DimensionMismatch {
                left: self.cols,
                right: other.cols,
            });
        }
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Ok(BitMatrix {
            rows,
            cols: self.cols,
        })
    }

    /// Returns the submatrix given by the listed rows and columns (in the given order).
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> BitMatrix {
        let rows = row_idx
            .iter()
            .map(|&r| self.rows[r].select(col_idx))
            .collect();
        BitMatrix {
            rows,
            cols: col_idx.len(),
        }
    }

    /// Returns the submatrix keeping all rows but only the listed columns.
    pub fn select_columns(&self, col_idx: &[usize]) -> BitMatrix {
        let rows = self.rows.iter().map(|r| r.select(col_idx)).collect();
        BitMatrix {
            rows,
            cols: col_idx.len(),
        }
    }

    /// Returns the matrix–vector product `self * v` over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.num_cols()`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "mul_vec dimension mismatch");
        let mut out = BitVec::zeros(self.num_rows());
        for (i, row) in self.rows.iter().enumerate() {
            if row.dot(v) {
                out.set(i, true);
            }
        }
        out
    }

    /// Returns the matrix product `self * other` over GF(2).
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::DimensionMismatch`] if `self.num_cols() != other.num_rows()`.
    pub fn mul(&self, other: &BitMatrix) -> Result<BitMatrix, Gf2Error> {
        if self.cols != other.num_rows() {
            return Err(Gf2Error::DimensionMismatch {
                left: self.cols,
                right: other.num_rows(),
            });
        }
        let mut out = BitMatrix::zeros(self.num_rows(), other.num_cols());
        for (i, row) in self.rows.iter().enumerate() {
            for k in row.ones() {
                out.rows[i].xor_assign_with(&other.rows[k]);
            }
        }
        Ok(out)
    }

    /// Returns `true` if every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.rows.iter().all(BitVec::is_zero)
    }

    /// Computes the row-echelon form together with pivot-column bookkeeping.
    ///
    /// The result retains the full reduced rows (reduced row-echelon form) so it can be
    /// reused for rank queries, row-space membership tests and solving.
    pub fn row_echelon(&self) -> RowEchelon {
        let mut rows = self.rows.clone();
        let mut pivot_cols = Vec::new();
        let mut pivot_row = 0usize;
        for col in 0..self.cols {
            // Find a row at or below `pivot_row` with a one in this column.
            let Some(found) = (pivot_row..rows.len()).find(|&r| rows[r].get(col)) else {
                continue;
            };
            rows.swap(pivot_row, found);
            let pivot = rows[pivot_row].clone();
            for (r, row) in rows.iter_mut().enumerate() {
                if r != pivot_row && row.get(col) {
                    row.xor_assign_with(&pivot);
                }
            }
            pivot_cols.push(col);
            pivot_row += 1;
            if pivot_row == rows.len() {
                break;
            }
        }
        RowEchelon {
            rows,
            cols: self.cols,
            pivot_cols,
        }
    }

    /// Returns the rank of the matrix.
    pub fn rank(&self) -> usize {
        self.row_echelon().rank()
    }

    /// Returns `true` if `v` lies in the row space of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.num_cols()`.
    pub fn row_space_contains(&self, v: &BitVec) -> bool {
        assert_eq!(v.len(), self.cols, "row_space_contains length mismatch");
        self.row_echelon().reduces_to_zero(v)
    }

    /// Returns `true` if every row of `other` lies in the row space of `self`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn row_space_contains_all(&self, other: &BitMatrix) -> bool {
        assert_eq!(self.cols, other.cols, "column count mismatch");
        let ech = self.row_echelon();
        other.rows_iter().all(|r| ech.reduces_to_zero(r))
    }

    /// Returns a basis of the kernel (null space) `{x : self * x = 0}` as matrix rows.
    pub fn kernel_basis(&self) -> BitMatrix {
        let ech = self.row_echelon();
        let pivot_set: std::collections::HashSet<usize> = ech.pivot_cols.iter().copied().collect();
        let free_cols: Vec<usize> = (0..self.cols).filter(|c| !pivot_set.contains(c)).collect();
        let mut basis_rows = Vec::with_capacity(free_cols.len());
        for &free in &free_cols {
            let mut x = BitVec::zeros(self.cols);
            x.set(free, true);
            // Back-substitute: pivot variable value = entry of the reduced row at `free`.
            for (pi, &pcol) in ech.pivot_cols.iter().enumerate() {
                if ech.rows[pi].get(free) {
                    x.set(pcol, true);
                }
            }
            basis_rows.push(x);
        }
        BitMatrix {
            rows: basis_rows,
            cols: self.cols,
        }
    }

    /// Solves `self * x = b`, returning one solution if any exists.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.num_rows()`.
    pub fn solve(&self, b: &BitVec) -> Option<BitVec> {
        assert_eq!(b.len(), self.num_rows(), "solve dimension mismatch");
        // Eliminate on the augmented matrix [self | b].
        let mut rows: Vec<(BitVec, bool)> = self
            .rows
            .iter()
            .cloned()
            .zip((0..self.num_rows()).map(|i| b.get(i)))
            .collect();
        let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row, col)
        let mut pivot_row = 0usize;
        for col in 0..self.cols {
            let Some(found) = (pivot_row..rows.len()).find(|&r| rows[r].0.get(col)) else {
                continue;
            };
            rows.swap(pivot_row, found);
            let (pivot_vec, pivot_b) = rows[pivot_row].clone();
            for (r, (row, rb)) in rows.iter_mut().enumerate() {
                if r != pivot_row && row.get(col) {
                    row.xor_assign_with(&pivot_vec);
                    *rb ^= pivot_b;
                }
            }
            pivots.push((pivot_row, col));
            pivot_row += 1;
            if pivot_row == rows.len() {
                break;
            }
        }
        // Inconsistent if any zero row has a nonzero right-hand side.
        for (row, rb) in rows.iter().skip(pivot_row) {
            if *rb && row.is_zero() {
                return None;
            }
        }
        let mut x = BitVec::zeros(self.cols);
        for &(r, c) in &pivots {
            if rows[r].1 {
                x.set(c, true);
            }
        }
        // Verify (cheap) to guard against inconsistent systems whose contradiction row
        // still has stray entries beyond the processed columns.
        if &self.mul_vec(&x) == b {
            Some(x)
        } else {
            None
        }
    }

    /// Returns a matrix whose rows are a basis of the row space of `self`.
    pub fn row_basis(&self) -> BitMatrix {
        let ech = self.row_echelon();
        let rank = ech.rank();
        BitMatrix {
            rows: ech.rows[..rank].to_vec(),
            cols: self.cols,
        }
    }

    /// Returns the density of ones (for diagnostics).
    pub fn density(&self) -> f64 {
        if self.num_rows() == 0 || self.cols == 0 {
            return 0.0;
        }
        let ones: usize = self.rows.iter().map(BitVec::weight).sum();
        ones as f64 / (self.num_rows() * self.cols) as f64
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.num_rows(), self.cols)?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        write!(f, "]")
    }
}

/// The result of Gaussian elimination on a [`BitMatrix`].
///
/// Produced by [`BitMatrix::row_echelon`]; caches the reduced rows and pivot columns so
/// that repeated row-space membership queries against the same matrix are cheap.
#[derive(Clone, Debug)]
pub struct RowEchelon {
    rows: Vec<BitVec>,
    cols: usize,
    pivot_cols: Vec<usize>,
}

impl RowEchelon {
    /// Returns the rank (number of pivots).
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }

    /// Returns the pivot columns in increasing order.
    pub fn pivot_columns(&self) -> &[usize] {
        &self.pivot_cols
    }

    /// Returns the number of columns of the original matrix.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if `v` reduces to zero against the echelon rows, i.e. if `v` lies
    /// in the row space of the original matrix.
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the matrix's column count.
    pub fn reduces_to_zero(&self, v: &BitVec) -> bool {
        assert_eq!(v.len(), self.cols, "length mismatch");
        let mut w = v.clone();
        for (pi, &pcol) in self.pivot_cols.iter().enumerate() {
            if w.get(pcol) {
                w.xor_assign_with(&self.rows[pi]);
            }
        }
        w.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, density: f64) -> BitMatrix {
        let mut m = BitMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(density) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    #[test]
    fn identity_has_full_rank() {
        let m = BitMatrix::identity(17);
        assert_eq!(m.rank(), 17);
        assert!(m.kernel_basis().num_rows() == 0);
    }

    #[test]
    fn rank_of_dependent_rows() {
        let m = BitMatrix::from_rows_u8(&[&[1, 1, 0], &[0, 1, 1], &[1, 0, 1]]);
        // row2 = row0 + row1
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = BitMatrix::from_rows_u8(&[&[1, 0, 1, 1], &[0, 1, 0, 0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().num_rows(), 4);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = BitMatrix::from_rows_u8(&[&[1, 1, 0], &[0, 1, 1]]);
        let v = BitVec::from_u8(&[1, 1, 1]);
        let out = m.mul_vec(&v);
        assert_eq!(out.to_u8_vec(), vec![0, 0]);
        let v2 = BitVec::from_u8(&[1, 0, 0]);
        assert_eq!(m.mul_vec(&v2).to_u8_vec(), vec![1, 0]);
    }

    #[test]
    fn matmul_against_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = random_matrix(&mut rng, 8, 13, 0.4);
        let id = BitMatrix::identity(13);
        assert_eq!(m.mul(&id).unwrap(), m);
        let idl = BitMatrix::identity(8);
        assert_eq!(idl.mul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_dimension_mismatch_is_error() {
        let a = BitMatrix::zeros(2, 3);
        let b = BitMatrix::zeros(2, 3);
        assert!(matches!(a.mul(&b), Err(Gf2Error::DimensionMismatch { .. })));
    }

    #[test]
    fn hstack_vstack_shapes() {
        let a = BitMatrix::from_rows_u8(&[&[1, 0], &[0, 1]]);
        let b = BitMatrix::from_rows_u8(&[&[1, 1], &[1, 1]]);
        let h = a.hstack(&b).unwrap();
        assert_eq!((h.num_rows(), h.num_cols()), (2, 4));
        assert!(h.get(0, 2) && h.get(0, 3));
        let v = a.vstack(&b).unwrap();
        assert_eq!((v.num_rows(), v.num_cols()), (4, 2));
        assert!(a.vstack(&BitMatrix::zeros(1, 3)).is_err());
        assert!(a.hstack(&BitMatrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn kernel_vectors_are_annihilated() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let m = random_matrix(&mut rng, 6, 12, 0.35);
            let k = m.kernel_basis();
            assert_eq!(k.num_rows(), 12 - m.rank());
            for row in k.rows_iter() {
                assert!(m.mul_vec(row).is_zero());
            }
            // Kernel basis itself has full rank.
            assert_eq!(k.rank(), k.num_rows());
        }
    }

    #[test]
    fn solve_finds_solutions_and_detects_inconsistency() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut solved = 0;
        let mut unsolved = 0;
        for _ in 0..50 {
            let m = random_matrix(&mut rng, 7, 9, 0.4);
            let mut b = BitVec::zeros(7);
            for i in 0..7 {
                if rng.gen_bool(0.5) {
                    b.set(i, true);
                }
            }
            match m.solve(&b) {
                Some(x) => {
                    assert_eq!(m.mul_vec(&x), b);
                    solved += 1;
                }
                None => {
                    // Verify inconsistency: b must not be in the column space.
                    let aug = m
                        .hstack(&BitMatrix::from_rows(
                            b.to_u8_vec()
                                .iter()
                                .map(|&v| BitVec::from_u8(&[v]))
                                .collect(),
                            1,
                        ))
                        .unwrap();
                    assert!(aug.rank() > m.rank());
                    unsolved += 1;
                }
            }
        }
        assert!(solved > 0);
        assert!(unsolved > 0, "expected at least one inconsistent system");
    }

    #[test]
    fn row_space_membership() {
        let m = BitMatrix::from_rows_u8(&[&[1, 1, 0, 0], &[0, 0, 1, 1]]);
        assert!(m.row_space_contains(&BitVec::from_u8(&[1, 1, 1, 1])));
        assert!(!m.row_space_contains(&BitVec::from_u8(&[1, 0, 0, 0])));
        assert!(m.row_space_contains(&BitVec::zeros(4)));
        let sub = BitMatrix::from_rows_u8(&[&[1, 1, 1, 1]]);
        assert!(m.row_space_contains_all(&sub));
        let not_sub = BitMatrix::from_rows_u8(&[&[1, 1, 1, 1], &[0, 1, 0, 0]]);
        assert!(!m.row_space_contains_all(&not_sub));
    }

    #[test]
    fn row_basis_spans_same_space() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = random_matrix(&mut rng, 10, 8, 0.4);
        let basis = m.row_basis();
        assert_eq!(basis.num_rows(), m.rank());
        assert!(m.row_space_contains_all(&basis));
        assert!(basis.row_space_contains_all(&m));
    }

    #[test]
    fn submatrix_and_columns() {
        let m = BitMatrix::from_rows_u8(&[&[1, 0, 1], &[0, 1, 1], &[1, 1, 0]]);
        let s = m.submatrix(&[0, 2], &[0, 2]);
        assert_eq!(s, BitMatrix::from_rows_u8(&[&[1, 1], &[1, 0]]));
        assert_eq!(m.column(2).ones().collect::<Vec<_>>(), vec![0, 1]);
        let sc = m.select_columns(&[1]);
        assert_eq!(sc.num_cols(), 1);
        assert_eq!(sc.column(0).ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = BitMatrix::zeros(1, 2);
        assert!(format!("{m:?}").contains("BitMatrix 1x2"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_rank_bounded(seed in any::<u64>(), rows in 1usize..12, cols in 1usize..12) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = random_matrix(&mut rng, rows, cols, 0.4);
            let r = m.rank();
            prop_assert!(r <= rows.min(cols));
            prop_assert_eq!(r, m.transpose().rank());
        }

        #[test]
        fn prop_rank_nullity(seed in any::<u64>(), rows in 1usize..12, cols in 1usize..14) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = random_matrix(&mut rng, rows, cols, 0.45);
            prop_assert_eq!(m.rank() + m.kernel_basis().num_rows(), cols);
        }

        #[test]
        fn prop_linear_combinations_in_rowspace(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = random_matrix(&mut rng, 6, 10, 0.4);
            // Random combination of rows must be in the row space.
            let mut v = BitVec::zeros(10);
            for row in m.rows_iter() {
                if rng.gen_bool(0.5) {
                    v.xor_assign_with(row);
                }
            }
            prop_assert!(m.row_space_contains(&v));
        }
    }
}
