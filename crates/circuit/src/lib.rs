//! Syndrome-measurement circuits, circuit-level noise and detector error models.
//!
//! This crate is the "Stim-like" substrate of the PropHunt reproduction. It turns a CSS
//! code plus an abstract CNOT schedule into a concrete physical circuit, attaches a
//! circuit-level Pauli noise model, and statically propagates every possible fault
//! through the circuit to produce the **detector error model** — the circuit-level check
//! matrix `H` and logical-observable matrix `L` that the paper's ambiguity analysis and
//! decoders operate on.
//!
//! The main pipeline is:
//!
//! 1. [`schedule::ScheduleSpec`] — the abstract schedule: the order in which each
//!    stabilizer's ancilla interacts with its data qubits, plus the relative order of
//!    stabilizers on every shared data qubit (the paper's Figure 11 representation).
//!    Constructors include the [`schedule::ScheduleSpec::coloration`] baseline and the
//!    hand-designed surface-code schedule.
//! 2. [`builder::MemoryExperiment`] — expands the schedule into a full memory-experiment
//!    circuit over `rounds` rounds with detectors and logical observables.
//! 3. [`noise::NoiseModel`] — the paper's uniform circuit-level depolarizing model with
//!    optional idle errors.
//! 4. [`dem::DetectorErrorModel`] — fault enumeration + Pauli propagation, producing the
//!    circuit-level `H`/`L` matrices, plus a Monte-Carlo [`dem::DemSampler`].
//!
//! # Example
//!
//! ```
//! use prophunt_qec::surface::rotated_surface_code_with_layout;
//! use prophunt_circuit::schedule::ScheduleSpec;
//! use prophunt_circuit::builder::{MemoryBasis, MemoryExperiment};
//! use prophunt_circuit::noise::NoiseModel;
//! use prophunt_circuit::dem::DetectorErrorModel;
//!
//! let (code, layout) = rotated_surface_code_with_layout(3);
//! let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
//! let experiment = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z)?;
//! let dem = DetectorErrorModel::from_experiment(&experiment, &NoiseModel::uniform_depolarizing(1e-3));
//! assert!(dem.num_errors() > 100);
//! # Ok::<(), prophunt_circuit::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dem;
pub mod noise;
pub mod ops;
pub mod schedule;

pub use builder::{MemoryBasis, MemoryExperiment};
pub use dem::{DemSampler, DetectorErrorModel, ErrorMechanism, FaultSource};
pub use noise::NoiseModel;
pub use ops::{Circuit, Op};
pub use schedule::eval::{EvalOp, Move, ScheduleEval};
pub use schedule::{ScheduleSpec, StabilizerId};

/// Errors produced while building circuits from schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// The schedule could not be turned into a circuit (cyclic dependencies).
    Unschedulable,
    /// The schedule breaks stabilizer commutation.
    BreaksCommutation {
        /// Index of the offending X stabilizer.
        x_stabilizer: usize,
        /// Index of the offending Z stabilizer.
        z_stabilizer: usize,
    },
    /// The schedule does not cover every (stabilizer, data-qubit) pair of the code.
    IncompleteSchedule,
    /// The schedule's components are internally inconsistent (bad stabilizer ids,
    /// duplicate qubits in an order, a relative order naming an absent pair, ...).
    InvalidSchedule {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A detector error model's components are internally inconsistent (detector or
    /// observable indices out of range, probabilities outside `[0, 1]`).
    InvalidErrorModel {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::Unschedulable => {
                write!(f, "schedule contains a cyclic CNOT dependency and cannot be laid out")
            }
            CircuitError::BreaksCommutation { x_stabilizer, z_stabilizer } => write!(
                f,
                "schedule breaks commutation between X stabilizer {x_stabilizer} and Z stabilizer {z_stabilizer}"
            ),
            CircuitError::IncompleteSchedule => {
                write!(f, "schedule does not cover every stabilizer/data-qubit pair of the code")
            }
            CircuitError::InvalidSchedule { reason } => {
                write!(f, "invalid schedule: {reason}")
            }
            CircuitError::InvalidErrorModel { reason } => {
                write!(f, "invalid detector error model: {reason}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}
