// D3 positive: raw thread spawns outside prophunt-runtime.
pub fn fan_out() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
