//! Hand-rolled observability layer for the PropHunt suite.
//!
//! The crate provides a [`Registry`] of three typed instrument classes —
//! monotonic [`Counter`]s, last/max [`Gauge`]s and log2-bucketed
//! [`Histogram`]s — plus [`Span`] RAII timers that record their elapsed
//! nanoseconds into a histogram on drop. Every instrument is a named
//! `Arc<AtomicU64>`-backed cell: acquiring a handle takes a registry lock
//! once, after which recording is a single relaxed atomic op, safe to share
//! across the deterministic worker pool.
//!
//! The [`Obs`] wrapper is the form the rest of the workspace threads around:
//! a cloneable `Option<Arc<Registry>>` whose disabled state (the default)
//! turns every recording call into a branch on a `None` — instrumentation is
//! strictly out-of-band of the splitmix64 seed streams and costs near zero
//! when no registry is attached.
//!
//! # Determinism contract
//!
//! Counters are reserved for *deterministic* quantities: at a fixed
//! `(seed, chunk_size)` every counter must be bit-identical at any thread
//! count. Timings, occupancy and anything else thread-dependent must go to
//! gauges or histograms instead; [`Snapshot`] keeps the classes separate so
//! exporters can byte-compare the deterministic subset on its own.
//!
//! # Histogram buckets
//!
//! Histograms have [`HISTOGRAM_BUCKETS`] (65) fixed log2 buckets: bucket 0
//! holds exactly the value 0, and bucket `b >= 1` holds the values in
//! `[2^(b-1), 2^b - 1]` (bucket 64 is capped at `u64::MAX`). Bucket counts
//! plus a running sum are enough for p50/p90/p99 estimates to within a factor
//! of two, which is the resolution the report analyzer needs.

#![forbid(unsafe_code)]

mod trace;

pub use trace::{
    TraceEvent, TraceKind, TraceLog, TraceSpan, Tracer, WorkerScope, DIAG_CATEGORY, LOCAL_FLUSH,
    MAX_EVENTS,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Number of fixed log2 buckets in every [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index a value lands in: 0 for 0, `64 - leading_zeros` otherwise.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Smallest value in bucket `bucket` (0 for bucket 0, else `2^(bucket-1)`).
#[must_use]
pub fn bucket_lower(bucket: usize) -> u64 {
    assert!(bucket < HISTOGRAM_BUCKETS, "bucket {bucket} out of range");
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

/// Largest value in bucket `bucket` (0 for bucket 0, else `2^bucket - 1`,
/// saturating to `u64::MAX` for the final bucket).
#[must_use]
pub fn bucket_upper(bucket: usize) -> u64 {
    assert!(bucket < HISTOGRAM_BUCKETS, "bucket {bucket} out of range");
    if bucket == 0 {
        0
    } else if bucket == HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// A [`Duration`] as whole nanoseconds, saturating at `u64::MAX` (~584 years).
#[must_use]
pub fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Handle to a named monotonic counter. Cloning shares the same cell.
///
/// Counters carry the deterministic half of the observability contract: only
/// record quantities that are bit-identical at any thread count.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping, relaxed).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a named gauge: a last-written or running-max `u64` cell.
///
/// Gauges live on the non-deterministic side of the contract (occupancy,
/// peak sizes) and are excluded from byte-compared exports.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the gauge with `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger than the current value.
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Handle to a named log2-bucketed histogram. Cloning shares the same cells.
///
/// Histograms carry timings and other thread-dependent distributions; see the
/// crate docs for the bucket layout.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation of `v`.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut count = 0u64;
        let mut buckets = Vec::new();
        for (b, cell) in self.0.buckets.iter().enumerate() {
            let c = cell.load(Ordering::Relaxed);
            if c > 0 {
                count += c;
                buckets.push((b, c));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time copy of one histogram: total count, running sum, and the
/// non-empty `(bucket_index, count)` pairs in ascending bucket order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded observations.
    pub count: u64,
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
    /// Non-empty buckets as `(bucket_index, count)`, ascending by index.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile (`0.0..=1.0`): the upper bound of the first
    /// bucket whose cumulative count reaches `q * count`. Returns 0 for an
    /// empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(b, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(self.buckets.last().map_or(0, |&(b, _)| b))
    }

    /// Mean of the recorded values (exact — uses the running sum), or 0.0 for
    /// an empty histogram.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time copy of every instrument in a [`Registry`], each class
/// sorted by instrument name.
///
/// `counters` is the deterministic subset; `gauges` and `histograms` hold the
/// timing/occupancy side and are expected to vary run to run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` for every histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of the named counter, or 0 if it was never created.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Snapshot of the named histogram, if it was ever created.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// Named-instrument registry: the shared sink every instrumented layer
/// records into.
///
/// Instruments are created on first use and live for the registry's lifetime.
/// Handle acquisition takes a read lock (write lock only on first creation);
/// recording through a handle is lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<HistogramCore>>>,
}

fn get_or_create<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(cell) = map.read().expect("obs registry lock poisoned").get(name) {
        return cell.clone();
    }
    map.write()
        .expect("obs registry lock poisoned")
        .entry(name.to_string())
        .or_default()
        .clone()
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Handle to the named counter, creating it at 0 on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        Counter(get_or_create(&self.counters, name))
    }

    /// Handle to the named gauge, creating it at 0 on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(get_or_create(&self.gauges, name))
    }

    /// Handle to the named histogram, creating it empty on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(get_or_create(&self.histograms, name))
    }

    /// Name-sorted point-in-time copy of every instrument.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .expect("obs registry lock poisoned")
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("obs registry lock poisoned")
            .iter()
            .map(|(n, g)| (n.clone(), g.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("obs registry lock poisoned")
            .iter()
            .map(|(n, h)| (n.clone(), Histogram(h.clone()).snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The cloneable observability handle threaded through runtime, session, LER
/// engines and search: either an attached shared [`Registry`] or disabled.
///
/// The default is disabled; every recording method then reduces to a branch
/// on `None`. Handles ([`Obs::counter`] etc.) come back as `Option`s so hot
/// loops can hoist the registry lookup out of the loop and skip timing work
/// entirely when disabled.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    registry: Option<Arc<Registry>>,
    tracer: Option<Tracer>,
}

impl Obs {
    /// A disabled handle: every recording call is a no-op.
    #[must_use]
    pub fn disabled() -> Obs {
        Obs::default()
    }

    /// An enabled handle backed by a fresh registry.
    #[must_use]
    pub fn enabled() -> Obs {
        Obs::with_registry(Arc::new(Registry::new()))
    }

    /// An enabled handle sharing the given registry.
    #[must_use]
    pub fn with_registry(registry: Arc<Registry>) -> Obs {
        Obs {
            registry: Some(registry),
            tracer: None,
        }
    }

    /// Returns the handle with a [`Tracer`] attached (builder-style). Every
    /// clone shares the tracer's sink, so one [`Obs::tracer`]`.drain()`
    /// collects events from every instrumented layer. Tracing composes with
    /// either registry state: a registry-less handle with a tracer records
    /// trace events and nothing else.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Obs {
        self.tracer = Some(tracer);
        self
    }

    /// Whether a registry is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Whether a tracer is attached.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// The attached tracer, if any. Instrumented layers hoist this once
    /// (`obs.tracer().cloned()`) so the disabled path is a single `None`
    /// branch.
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Opens a trace span, or `None` when no tracer is attached. See
    /// [`Tracer::span`].
    #[must_use]
    pub fn trace_span(&self, name: &str, cat: &str) -> Option<TraceSpan> {
        self.tracer.as_ref().map(|t| t.span(name, cat))
    }

    /// The attached registry, if any.
    #[must_use]
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// Counter handle, or `None` when disabled.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<Counter> {
        self.registry.as_ref().map(|r| r.counter(name))
    }

    /// Gauge handle, or `None` when disabled.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<Gauge> {
        self.registry.as_ref().map(|r| r.gauge(name))
    }

    /// Histogram handle, or `None` when disabled.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.registry.as_ref().map(|r| r.histogram(name))
    }

    /// Adds 1 to the named counter (no-op when disabled).
    pub fn inc(&self, name: &str) {
        if let Some(r) = &self.registry {
            r.counter(name).inc();
        }
    }

    /// Adds `n` to the named counter (no-op when disabled).
    pub fn add(&self, name: &str, n: u64) {
        if let Some(r) = &self.registry {
            r.counter(name).add(n);
        }
    }

    /// Raises the named gauge to at least `v` (no-op when disabled).
    pub fn gauge_max(&self, name: &str, v: u64) {
        if let Some(r) = &self.registry {
            r.gauge(name).record_max(v);
        }
    }

    /// Records `v` into the named histogram (no-op when disabled).
    pub fn record(&self, name: &str, v: u64) {
        if let Some(r) = &self.registry {
            r.histogram(name).record(v);
        }
    }

    /// Starts an RAII span timer recording into the named histogram (in
    /// nanoseconds) when it drops or [`Span::finish`]es. The span measures
    /// wall time even when disabled — [`Span::finish`] still returns the
    /// elapsed duration — but records nothing.
    #[must_use]
    pub fn span(&self, name: &str) -> Span {
        Span {
            hist: self.histogram(name),
            start: Instant::now(),
        }
    }

    /// Snapshot of the attached registry, or `None` when disabled.
    #[must_use]
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.registry.as_ref().map(|r| r.snapshot())
    }
}

/// RAII timer from [`Obs::span`]: records its elapsed nanoseconds into a
/// histogram exactly once, on [`Span::finish`] or on drop.
#[derive(Debug)]
pub struct Span {
    hist: Option<Histogram>,
    start: Instant,
}

impl Span {
    /// Elapsed wall time so far, without ending the span.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span, records it, and returns the elapsed wall time.
    ///
    /// The return value is measured even when the parent [`Obs`] is disabled,
    /// so callers can use one code path for both report timing fields and
    /// histogram export.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        if let Some(h) = self.hist.take() {
            h.record(duration_ns(elapsed));
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.record(duration_ns(self.start.elapsed()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_cells_across_handles() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.counter("x").get(), 5);
        assert_eq!(reg.counter("y").get(), 0);
    }

    #[test]
    fn gauges_set_and_record_max() {
        let reg = Registry::new();
        let g = reg.gauge("workers");
        g.set(3);
        g.record_max(2);
        assert_eq!(g.get(), 3);
        g.record_max(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_math_covers_the_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_lower(1), 1);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_lower(64), 1u64 << 63);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_snapshot_counts_sums_and_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("ns");
        for v in [0u64, 1, 1, 3, 100] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("ns").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 105);
        assert_eq!(hs.buckets, vec![(0, 1), (1, 2), (2, 1), (7, 1)]);
        assert_eq!(hs.quantile(0.0), 0);
        // rank ceil(0.5 * 5) = 3 lands in bucket 1 (values 1..=1).
        assert_eq!(hs.quantile(0.5), 1);
        assert_eq!(hs.quantile(1.0), bucket_upper(7));
        assert!((hs.mean() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let hs = HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        };
        assert_eq!(hs.quantile(0.5), 0);
        assert_eq!(hs.mean(), 0.0);
    }

    #[test]
    fn snapshot_is_name_sorted_and_class_separated() {
        let reg = Registry::new();
        reg.counter("b.count").inc();
        reg.counter("a.count").add(2);
        reg.gauge("z.peak").set(9);
        reg.histogram("m.ns").record(10);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.count".to_string(), 2), ("b.count".to_string(), 1)]
        );
        assert_eq!(snap.gauges, vec![("z.peak".to_string(), 9)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.counter("a.count"), 2);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn disabled_obs_is_a_no_op_and_spans_still_measure() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.inc("never");
        obs.record("never.ns", 1);
        assert!(obs.counter("never").is_none());
        assert!(obs.snapshot().is_none());
        let span = obs.span("never.ns");
        let wall = span.finish();
        assert!(wall.as_nanos() > 0 || wall.is_zero());
    }

    #[test]
    fn spans_record_once_on_finish_or_drop() {
        let obs = Obs::enabled();
        let wall = obs.span("work.ns").finish();
        {
            let _guard = obs.span("work.ns");
        }
        let snap = obs.snapshot().unwrap();
        let hs = snap.histogram("work.ns").unwrap();
        assert_eq!(hs.count, 2);
        assert!(wall.as_nanos() <= u128::from(u64::MAX));
    }

    #[test]
    fn tracer_rides_the_obs_handle_and_composes_with_either_registry_state() {
        let plain = Obs::disabled();
        assert!(!plain.trace_enabled());
        assert!(plain.trace_span("never", "test").is_none());
        let traced = Obs::disabled().with_tracer(Tracer::new());
        assert!(traced.trace_enabled() && !traced.is_enabled());
        let clone = traced.clone();
        clone.trace_span("work", "test").unwrap().finish();
        let log = traced.tracer().unwrap().drain();
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].name, "work");
        // Registry + tracer on one handle: both planes record.
        let both = Obs::enabled().with_tracer(Tracer::new());
        both.inc("jobs");
        both.trace_span("job", "test").unwrap().finish();
        assert_eq!(both.snapshot().unwrap().counter("jobs"), 1);
        assert_eq!(both.tracer().unwrap().drain().events.len(), 1);
    }

    #[test]
    fn shared_registry_obs_handles_record_into_the_same_instruments() {
        let reg = Arc::new(Registry::new());
        let a = Obs::with_registry(reg.clone());
        let b = a.clone();
        a.inc("jobs");
        b.inc("jobs");
        assert_eq!(reg.counter("jobs").get(), 2);
    }
}
