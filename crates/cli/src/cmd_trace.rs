//! `prophunt trace` — analyze a span-event trace written by `--trace`:
//! pool-utilization timeline, per-stage concurrency, the critical path through
//! the span DAG, and (for search runs) a convergence summary built from the
//! deterministic diagnostic records.
//!
//! Every section is a pure function of the parsed records, so the renderings
//! can be pinned on golden fixtures: the timing sections vary run to run (they
//! read wall-clock spans), but the convergence summary is bit-identical at any
//! thread count, like the counters it derives from.

use crate::args::CliError;
use crate::common::read_file;
use prophunt_formats::parse_report;
use prophunt_formats::report::ReportRecord;

pub const USAGE: &str = "\
prophunt trace <trace.jsonl>

Summarizes a JSON-lines trace file written by the --trace flag of
ler/optimize/search/sweep:

  * the `meta` provenance line, including the invoking command line
  * pool utilization — a per-worker busy timeline from `runtime.task` spans
  * per-stage concurrency — event count, total busy time, wall span, and
    average concurrency for every span name
  * the critical path — the longest chain of nested spans, walked from the
    longest root span down its longest child at each level
  * search convergence — per-arm and per-strategy acceptance statistics,
    the incumbent-depth trajectory, and rounds since the last improvement,
    rebuilt from the deterministic `diag` records (bit-identical at any
    --threads)";

/// One `trace` record, re-shaped for analysis.
struct TraceSpan {
    name: String,
    tid: u64,
    id: u64,
    parent: u64,
    ts: u64,
    dur: u64,
}

/// One deterministic diagnostic record (`cat == "diag"`).
struct DiagRecord {
    name: String,
    tid: u64,
    args: Vec<(String, u64)>,
}

struct TraceFile {
    meta: Option<String>,
    spans: Vec<TraceSpan>,
    diags: Vec<DiagRecord>,
}

fn load(path: &str) -> Result<TraceFile, CliError> {
    let records =
        parse_report(&read_file(path)?).map_err(|e| CliError::failure(format!("{path}: {e}")))?;
    let mut file = TraceFile {
        meta: None,
        spans: Vec::new(),
        diags: Vec::new(),
    };
    for record in records {
        match record {
            ReportRecord::Meta {
                version,
                seed,
                threads,
                chunk_size,
                engine,
                cmdline,
            } => {
                let engine = if engine.is_empty() { "-" } else { &engine };
                let mut line = format!(
                    "meta: v{version} seed={seed} threads={threads} chunk_size={chunk_size} \
                     engine={engine}"
                );
                if !cmdline.is_empty() {
                    line.push_str(&format!("\ncmdline: {cmdline}"));
                }
                file.meta.get_or_insert(line);
            }
            ReportRecord::Trace {
                name,
                cat,
                kind,
                tid,
                id,
                parent,
                ts,
                dur,
                args,
            } => {
                if cat == "diag" {
                    file.diags.push(DiagRecord { name, tid, args });
                } else if kind == "span" {
                    file.spans.push(TraceSpan {
                        name,
                        tid,
                        id,
                        parent,
                        ts,
                        dur,
                    });
                }
            }
            _ => {}
        }
    }
    if file.spans.is_empty() && file.diags.is_empty() {
        return Err(CliError::failure(format!(
            "{path}: no trace records found (was this written with --trace?)"
        )));
    }
    Ok(file)
}

/// Nanoseconds as a human-readable duration (fixed decimals so fixture
/// renderings stay byte-stable).
fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}us", v / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The per-worker busy timeline from `runtime.task` spans: one row per worker
/// lane, `width` columns across the traced wall interval, each column shaded by
/// the lane's busy fraction within it.
fn utilization_section(spans: &[TraceSpan], width: usize) -> String {
    let tasks: Vec<&TraceSpan> = spans.iter().filter(|s| s.name == "runtime.task").collect();
    if tasks.is_empty() {
        return "pool utilization: no runtime.task spans\n".to_string();
    }
    let start = tasks.iter().map(|s| s.ts).min().unwrap_or(0);
    let end = tasks.iter().map(|s| s.ts + s.dur).max().unwrap_or(0);
    let wall = (end - start).max(1);
    let mut lanes: Vec<u64> = tasks.iter().map(|s| s.tid).collect();
    lanes.sort_unstable();
    lanes.dedup();
    let mut out = format!(
        "pool utilization ({} tasks, {} workers, wall {}):\n",
        tasks.len(),
        lanes.len(),
        fmt_ns(wall)
    );
    for &lane in &lanes {
        let mine: Vec<&&TraceSpan> = tasks.iter().filter(|s| s.tid == lane).collect();
        let busy: u64 = mine.iter().map(|s| s.dur).sum();
        let mut row = String::with_capacity(width);
        for col in 0..width {
            // Column [c0, c1) in trace time; shade by the overlapped fraction.
            let c0 = start + (wall * col as u64) / width as u64;
            let c1 = start + (wall * (col as u64 + 1)) / width as u64;
            let overlap: u64 = mine
                .iter()
                .map(|s| s.ts.max(c0)..(s.ts + s.dur).min(c1))
                .filter(|r| r.end > r.start)
                .map(|r| r.end - r.start)
                .sum();
            let f = overlap as f64 / (c1 - c0).max(1) as f64;
            row.push(match f {
                f if f <= 0.0 => ' ',
                f if f < 0.25 => '.',
                f if f < 0.50 => ':',
                f if f < 0.75 => '+',
                _ => '#',
            });
        }
        out.push_str(&format!(
            "  worker {lane:<3} [{row}] {:>5.1}% busy, {} tasks\n",
            100.0 * busy as f64 / wall as f64,
            mine.len()
        ));
    }
    out
}

/// Per-span-name concurrency: count, summed busy time, wall span, and the
/// average concurrency (busy / wall). Rows sort by descending busy time, then
/// name, so the dominant stage leads.
fn concurrency_section(spans: &[TraceSpan]) -> String {
    if spans.is_empty() {
        return "stage concurrency: no spans\n".to_string();
    }
    let mut names: Vec<&String> = spans.iter().map(|s| &s.name).collect();
    names.sort();
    names.dedup();
    let mut rows: Vec<(String, usize, u64, u64)> = names
        .into_iter()
        .map(|name| {
            let mine: Vec<&TraceSpan> = spans.iter().filter(|s| &s.name == name).collect();
            let busy: u64 = mine.iter().map(|s| s.dur).sum();
            let start = mine.iter().map(|s| s.ts).min().unwrap_or(0);
            let end = mine.iter().map(|s| s.ts + s.dur).max().unwrap_or(0);
            (name.clone(), mine.len(), busy, end - start)
        })
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    let mut out = format!(
        "stage concurrency:\n  {:<28} {:>8} {:>12} {:>12} {:>10}\n",
        "span", "count", "busy", "wall", "avg conc"
    );
    for (name, count, busy, wall) in rows {
        out.push_str(&format!(
            "  {name:<28} {count:>8} {:>12} {:>12} {:>10.2}\n",
            fmt_ns(busy),
            fmt_ns(wall),
            busy as f64 / wall.max(1) as f64
        ));
    }
    out
}

/// Walks the critical path: start at the longest root span, descend into the
/// longest child at each level (ties broken by name, then start time, so the
/// walk is deterministic given equal durations).
fn critical_path_section(spans: &[TraceSpan]) -> String {
    fn longest(candidates: Vec<&TraceSpan>) -> Option<&TraceSpan> {
        candidates.into_iter().max_by(|a, b| {
            a.dur
                .cmp(&b.dur)
                .then_with(|| b.name.cmp(&a.name))
                .then_with(|| b.ts.cmp(&a.ts))
        })
    }
    let Some(root) = longest(spans.iter().filter(|s| s.parent == 0).collect()) else {
        return "critical path: no root spans\n".to_string();
    };
    let mut out = format!(
        "critical path (root {}, {}):\n",
        root.name,
        fmt_ns(root.dur)
    );
    let mut current = root;
    let mut depth = 0usize;
    loop {
        out.push_str(&format!(
            "  {:indent$}{} [worker {}] {} ({:.1}% of root, starts +{})\n",
            "",
            current.name,
            current.tid,
            fmt_ns(current.dur),
            100.0 * current.dur as f64 / root.dur.max(1) as f64,
            fmt_ns(current.ts.saturating_sub(root.ts)),
            indent = depth * 2
        ));
        let children: Vec<&TraceSpan> = spans
            .iter()
            .filter(|s| s.parent == current.id && current.id != 0)
            .collect();
        match longest(children) {
            Some(child) => {
                current = child;
                depth += 1;
            }
            None => break,
        }
    }
    out
}

/// Looks up one named argument of a diagnostic record (0 when absent, matching
/// the additive-versioning default).
fn arg(record: &DiagRecord, key: &str) -> u64 {
    record
        .args
        .iter()
        .find(|(k, _)| k == key)
        .map_or(0, |&(_, v)| v)
}

/// The search-convergence summary, rebuilt from the deterministic `diag`
/// records: round/depth trajectory and plateau from `search.round`, per-arm
/// win/duplicate tallies from `search.arm`, per-strategy acceptance rates from
/// the `search.strategy.<name>` counter deltas.
fn convergence_section(diags: &[DiagRecord]) -> String {
    let rounds: Vec<&DiagRecord> = diags.iter().filter(|d| d.name == "search.round").collect();
    if rounds.is_empty() {
        return "search convergence: no diagnostic records (not a search trace)\n".to_string();
    }
    let last = rounds[rounds.len() - 1];
    let improvements: u64 = rounds.iter().map(|d| arg(d, "improved")).sum();
    let mut out = format!(
        "search convergence ({} rounds, {} improvements, final depth {}, {} rounds since \
         improvement, {} schedules seen):\n",
        rounds.len(),
        improvements,
        arg(last, "depth"),
        arg(last, "plateau"),
        arg(last, "seen")
    );
    let trajectory: Vec<String> = rounds.iter().map(|d| arg(d, "depth").to_string()).collect();
    out.push_str(&format!("  depth trajectory: {}\n", trajectory.join(" ")));

    let arms: Vec<&DiagRecord> = diags.iter().filter(|d| d.name == "search.arm").collect();
    let mut lanes: Vec<u64> = arms.iter().map(|d| d.tid).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in lanes {
        let mine: Vec<&&DiagRecord> = arms.iter().filter(|d| d.tid == lane).collect();
        let wins: u64 = mine.iter().map(|d| arg(d, "win")).sum();
        let dups: u64 = mine.iter().map(|d| arg(d, "dup")).sum();
        out.push_str(&format!(
            "  arm {lane}: {} rounds, {wins} wins, {dups} duplicate incumbents\n",
            mine.len()
        ));
    }

    // Strategies in first-appearance order — the portfolio emits them in slot
    // order, which is deterministic.
    let mut strategies: Vec<&str> = Vec::new();
    for d in diags {
        if let Some(name) = d.name.strip_prefix("search.strategy.") {
            if !strategies.contains(&name) {
                strategies.push(name);
            }
        }
    }
    for strategy in strategies {
        let full = format!("search.strategy.{strategy}");
        let mine: Vec<&DiagRecord> = diags.iter().filter(|d| d.name == full).collect();
        let total = |key: &str| -> u64 { mine.iter().map(|d| arg(d, key)).sum() };
        // `proposals` counts incumbent submissions (one per arm per round);
        // the move-acceptance rate comes from the accept/revert tallies the
        // local-search strategies keep per mutation step. Strategy-specific
        // counters (restarts, expansions, iterations) print only when used.
        let mut parts = vec![
            format!("{} proposals", total("proposals")),
            format!("{} wins", total("wins")),
        ];
        let (accepts, reverts) = (total("accepts"), total("reverts"));
        let moves = accepts + reverts;
        if moves > 0 {
            parts.push(format!(
                "{accepts}/{moves} moves accepted ({:.1}%)",
                100.0 * accepts as f64 / moves as f64
            ));
        }
        for key in ["restarts", "expansions", "iterations"] {
            let n = total(key);
            if n > 0 {
                parts.push(format!("{n} {key}"));
            }
        }
        out.push_str(&format!("  strategy {strategy}: {}\n", parts.join(", ")));
    }
    out
}

pub fn run(args: &[String]) -> Result<(), CliError> {
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        return Err(CliError::usage(format!(
            "trace takes a file path, not flags (got {flag:?})"
        )));
    }
    let [path] = args else {
        return Err(CliError::usage("trace needs exactly one trace file"));
    };
    let file = load(path)?;
    println!("{path}");
    if let Some(meta) = &file.meta {
        println!("{meta}");
    }
    println!();
    print!("{}", utilization_section(&file.spans, 50));
    println!();
    print!("{}", concurrency_section(&file.spans));
    println!();
    print!("{}", critical_path_section(&file.spans));
    println!();
    print!("{}", convergence_section(&file.diags));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, tid: u64, id: u64, parent: u64, ts: u64, dur: u64) -> TraceSpan {
        TraceSpan {
            name: name.to_string(),
            tid,
            id,
            parent,
            ts,
            dur,
        }
    }

    fn diag(name: &str, tid: u64, args: &[(&str, u64)]) -> DiagRecord {
        DiagRecord {
            name: name.to_string(),
            tid,
            args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        }
    }

    /// The golden span fixture: one runtime.call holding three tasks across two
    /// workers, the longest task holding an ler.chunk with two stage completes.
    fn fixture_spans() -> Vec<TraceSpan> {
        vec![
            span("runtime.call", 0, 1, 0, 0, 10_000),
            span("runtime.task", 1, 2, 1, 500, 4_000),
            span("runtime.task", 2, 3, 1, 500, 8_000),
            span("runtime.task", 1, 4, 1, 5_000, 3_000),
            span("ler.chunk", 2, 5, 3, 600, 7_500),
            span("ler.scalar.sample", 2, 6, 5, 600, 4_500),
            span("ler.scalar.decode", 2, 7, 5, 5_100, 3_000),
        ]
    }

    #[test]
    fn critical_path_is_pinned_on_the_golden_fixture() {
        // Root -> longest task -> its chunk -> the longest stage within it.
        assert_eq!(
            critical_path_section(&fixture_spans()),
            "critical path (root runtime.call, 10.00us):\n\
             \x20 runtime.call [worker 0] 10.00us (100.0% of root, starts +0ns)\n\
             \x20   runtime.task [worker 2] 8.00us (80.0% of root, starts +500ns)\n\
             \x20     ler.chunk [worker 2] 7.50us (75.0% of root, starts +600ns)\n\
             \x20       ler.scalar.sample [worker 2] 4.50us (45.0% of root, starts +600ns)\n"
        );
    }

    #[test]
    fn concurrency_rows_sort_by_busy_time_and_report_avg_concurrency() {
        let section = concurrency_section(&fixture_spans());
        let lines: Vec<&str> = section.lines().collect();
        // 15.00us of runtime.task busy time over an 8.00us wall (500..8500):
        // average concurrency 1.875.
        assert!(lines[2].starts_with("  runtime.task"), "{section}");
        assert!(lines[2].ends_with("1.88"), "{section}");
        // Busy-descending order: task > call > chunk > sample > decode.
        let order: Vec<&str> = lines[2..]
            .iter()
            .map(|l| l.split_whitespace().next().unwrap())
            .collect();
        assert_eq!(
            order,
            [
                "runtime.task",
                "runtime.call",
                "ler.chunk",
                "ler.scalar.sample",
                "ler.scalar.decode"
            ]
        );
    }

    #[test]
    fn utilization_counts_lanes_and_tasks() {
        let section = utilization_section(&fixture_spans(), 10);
        assert!(
            section.starts_with("pool utilization (3 tasks, 2 workers, wall 8.00us):"),
            "{section}"
        );
        assert!(section.contains("worker 1"), "{section}");
        assert!(section.contains("2 tasks"), "{section}");
        // Worker 2 is busy for its whole 8.00us lane: a solid row.
        let lane2 = section.lines().find(|l| l.contains("worker 2")).unwrap();
        assert!(lane2.contains("[##########]"), "{section}");
        assert!(lane2.contains("100.0% busy"), "{section}");
    }

    #[test]
    fn convergence_summary_is_pinned_on_the_golden_fixture() {
        let diags = vec![
            diag(
                "search.arm",
                0,
                &[("round", 0), ("depth", 9), ("win", 1), ("dup", 0)],
            ),
            diag(
                "search.arm",
                1,
                &[("round", 0), ("depth", 10), ("win", 0), ("dup", 0)],
            ),
            diag(
                "search.strategy.anneal",
                0,
                &[
                    ("proposals", 1),
                    ("accepts", 6),
                    ("reverts", 18),
                    ("wins", 1),
                ],
            ),
            diag(
                "search.round",
                0,
                &[
                    ("round", 0),
                    ("depth", 9),
                    ("improved", 1),
                    ("plateau", 0),
                    ("seen", 40),
                ],
            ),
            diag(
                "search.arm",
                0,
                &[("round", 1), ("depth", 9), ("win", 0), ("dup", 1)],
            ),
            diag(
                "search.arm",
                1,
                &[("round", 1), ("depth", 10), ("win", 0), ("dup", 0)],
            ),
            diag(
                "search.strategy.anneal",
                0,
                &[
                    ("proposals", 1),
                    ("accepts", 2),
                    ("reverts", 22),
                    ("wins", 0),
                ],
            ),
            diag(
                "search.round",
                0,
                &[
                    ("round", 1),
                    ("depth", 9),
                    ("improved", 0),
                    ("plateau", 1),
                    ("seen", 71),
                ],
            ),
        ];
        assert_eq!(
            convergence_section(&diags),
            "search convergence (2 rounds, 1 improvements, final depth 9, 1 rounds since \
             improvement, 71 schedules seen):\n\
             \x20 depth trajectory: 9 9\n\
             \x20 arm 0: 2 rounds, 1 wins, 1 duplicate incumbents\n\
             \x20 arm 1: 2 rounds, 0 wins, 0 duplicate incumbents\n\
             \x20 strategy anneal: 2 proposals, 1 wins, 8/48 moves accepted (16.7%)\n"
        );
    }

    #[test]
    fn empty_sections_degrade_gracefully() {
        assert_eq!(
            utilization_section(&[], 10),
            "pool utilization: no runtime.task spans\n"
        );
        assert_eq!(concurrency_section(&[]), "stage concurrency: no spans\n");
        assert_eq!(critical_path_section(&[]), "critical path: no root spans\n");
        assert_eq!(
            convergence_section(&[]),
            "search convergence: no diagnostic records (not a search trace)\n"
        );
    }
}
