//! On-disk interchange formats for the PropHunt suite.
//!
//! Everything the suite computes — codes, schedules, detector error models,
//! optimization runs, logical-error-rate estimates — exists in memory as Rust
//! values; this crate gives each of them a stable text representation with both a
//! writer and a parser, so artifacts can be persisted, diffed, resumed and
//! exchanged with other toolchains (schedule-optimization tools are routinely
//! compared by importing/exporting exactly these objects). See `FORMATS.md` at the
//! repository root for the full grammars and the versioning policy.
//!
//! Four formats:
//!
//! * [`dem`] — the Stim-compatible `.dem` detector-error-model format
//!   ([`write_dem`] / [`parse_dem`]), round-trippable through
//!   [`prophunt_circuit::dem::DetectorErrorModel`] with bit-identical
//!   probabilities.
//! * [`code`] — the CSS code spec format ([`CodeSpec`], [`write_code_spec`] /
//!   [`parse_code_spec`]) plus the family mini-language ([`resolve_family`]) naming
//!   the `prophunt-qec` constructors.
//! * [`schedule`] — the schedule format ([`write_schedule`] / [`parse_schedule`]),
//!   the paper's Figure 11 representation (per-stabilizer data-qubit orders plus
//!   shared-qubit relative orders) as a self-contained file.
//! * [`report`] — the JSON-lines run-report format ([`ReportRecord`]) for
//!   optimization runs and LER sweeps, built on the hand-rolled [`json`] module
//!   (the vendor tree ships no serde). The [`trace`] module adds the trace-v1
//!   side of the format: report-record conversion and Chrome trace-event /
//!   Perfetto export for `prophunt-obs` trace streams.
//!
//! All parsers return a typed [`FormatError`] carrying the 1-based line/column of
//! the first offending token; none of them panic on malformed input.
//!
//! # Example
//!
//! ```
//! use prophunt_formats::{parse_schedule, write_schedule, resolve_family};
//! use prophunt_circuit::schedule::ScheduleSpec;
//!
//! let surface = resolve_family("surface:3")?;
//! let schedule = surface.hand_designed_schedule().unwrap();
//! let text = write_schedule(&schedule);
//! assert_eq!(parse_schedule(&text)?, schedule);
//! # Ok::<(), prophunt_formats::FormatError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod code;
pub mod dem;
pub mod error;
pub mod json;
pub mod report;
pub mod schedule;
pub mod trace;

pub use code::{parse_code_spec, resolve_family, write_code_spec, CodeSpec, ResolvedCode};
pub use dem::{parse_dem, write_dem};
pub use error::FormatError;
pub use json::Json;
pub use report::{
    iteration_to_record, parse_report, record_to_iteration, report_to_result, result_to_report,
    write_report, MetricsHistogram, ReportRecord,
};
pub use schedule::{parse_schedule, write_schedule};
pub use trace::{trace_event_to_record, write_chrome_trace};
