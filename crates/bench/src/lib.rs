//! Shared helpers for the PropHunt benchmark harness.
//!
//! The binaries in `src/bin/` regenerate the data behind every table and figure of the
//! paper's evaluation (see `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! recorded results); the Criterion benches in `benches/` measure the performance-
//! critical kernels (detector-error-model construction, ambiguity checking, subgraph
//! MaxSAT solving, decoding throughput).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_decoders::{estimate_logical_error_rate, BpOsdDecoder, LogicalErrorEstimate};
use prophunt_qec::product::{bivariate_bicycle, generalized_bicycle};
use prophunt_qec::surface::rotated_surface_code_with_layout;
use prophunt_qec::CssCode;

/// A benchmark code together with its optional hand-designed schedule.
pub struct BenchmarkCode {
    /// The code.
    pub code: CssCode,
    /// A hand-designed schedule, when one is known (surface codes).
    pub hand_designed: Option<ScheduleSpec>,
    /// Number of syndrome-measurement rounds used in simulations (the paper uses `d`).
    pub rounds: usize,
}

/// The benchmark suite of Table 1, with the LDPC substitutions documented in `DESIGN.md`:
/// rotated surface codes d = 3, 5, 7, 9 plus generalized-bicycle and bivariate-bicycle
/// codes standing in for the paper's LP / RQT instances.
pub fn benchmark_suite(include_large: bool) -> Vec<BenchmarkCode> {
    let mut out = Vec::new();
    let distances: &[usize] = if include_large { &[3, 5, 7, 9] } else { &[3, 5] };
    for &d in distances {
        let (code, layout) = rotated_surface_code_with_layout(d);
        let hand = ScheduleSpec::surface_hand_designed(&code, &layout);
        out.push(BenchmarkCode {
            code,
            hand_designed: Some(hand),
            rounds: d.min(5),
        });
    }
    // LP-class substitute: [[18, 2]] generalized bicycle code (weight-4 stabilizers).
    out.push(BenchmarkCode {
        code: generalized_bicycle(9, &[0, 1], &[0, 3], "gb_18_2"),
        hand_designed: None,
        rounds: 3,
    });
    // LP-class substitute with larger block: [[36, 2]] generalized bicycle code.
    out.push(BenchmarkCode {
        code: generalized_bicycle(18, &[0, 1], &[0, 5], "gb_36_2"),
        hand_designed: None,
        rounds: 3,
    });
    if include_large {
        // RQT-class substitute: the [[72, 12, 6]] bivariate bicycle code (weight-6).
        out.push(BenchmarkCode {
            code: bivariate_bicycle(
                6,
                6,
                &[(3, 0), (0, 1), (0, 2)],
                &[(0, 3), (1, 0), (2, 0)],
                "bb_72_12",
            ),
            hand_designed: None,
            rounds: 3,
        });
    }
    out
}

/// Estimates the combined (X + Z memory) logical error rate of a schedule.
pub fn combined_logical_error_rate(
    code: &CssCode,
    schedule: &ScheduleSpec,
    rounds: usize,
    p: f64,
    shots: usize,
    seed: u64,
    threads: usize,
) -> LogicalErrorEstimate {
    combined_logical_error_rate_with_idle(code, schedule, rounds, p, 0.0, shots, seed, threads)
}

/// Estimates the combined logical error rate with an additional idle-error strength
/// (Figure 15's sensitivity study).
#[allow(clippy::too_many_arguments)]
pub fn combined_logical_error_rate_with_idle(
    code: &CssCode,
    schedule: &ScheduleSpec,
    rounds: usize,
    p: f64,
    idle: f64,
    shots: usize,
    seed: u64,
    threads: usize,
) -> LogicalErrorEstimate {
    let mut total = LogicalErrorEstimate { shots: 0, failures: 0 };
    for basis in [MemoryBasis::Z, MemoryBasis::X] {
        let exp = MemoryExperiment::build(code, schedule, rounds, basis).expect("valid schedule");
        let noise = NoiseModel::uniform_depolarizing(p).with_idle(idle);
        let dem = DetectorErrorModel::from_experiment(&exp, &noise);
        let decoder = BpOsdDecoder::new(&dem);
        total = total.combined(estimate_logical_error_rate(&dem, &decoder, shots, seed, threads));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_contains_surface_and_ldpc_codes() {
        let suite = benchmark_suite(false);
        assert!(suite.len() >= 4);
        assert!(suite.iter().any(|b| b.code.name().starts_with("surface")));
        assert!(suite.iter().any(|b| b.code.name().starts_with("gb_")));
        for bench in &suite {
            if let Some(hand) = &bench.hand_designed {
                hand.validate(&bench.code).unwrap();
            }
        }
    }

    #[test]
    fn combined_ler_is_a_probability() {
        let suite = benchmark_suite(false);
        let bench = &suite[0];
        let schedule = ScheduleSpec::coloration(&bench.code);
        let est = combined_logical_error_rate(&bench.code, &schedule, 2, 2e-3, 200, 1, 2);
        assert!(est.rate() >= 0.0 && est.rate() <= 1.0);
        assert_eq!(est.shots, 400);
    }
}
