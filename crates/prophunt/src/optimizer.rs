//! The PropHunt iterative optimization loop (paper Section 5, Figure 8).

use crate::ambiguity::{find_ambiguous_subgraph, AmbiguousSubgraph, DecodingGraph};
use crate::changes::{apply_verified_changes, enumerate_candidates, verify_candidate, VerifiedChange};
use crate::minweight::{min_weight_logical_error, MinWeightSolution};
use prophunt_circuit::{MemoryBasis, ScheduleSpec};
use prophunt_qec::CssCode;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Configuration of a PropHunt optimization run.
#[derive(Debug, Clone)]
pub struct PropHuntConfig {
    /// Maximum number of optimization iterations (the paper uses 25).
    pub iterations: usize,
    /// Number of random subgraph-expansion samples per iteration (the paper uses 500).
    pub samples_per_iteration: usize,
    /// Number of syndrome-measurement rounds in the analysed memory experiment.
    pub rounds: usize,
    /// Physical error rate used to build the detector error model.
    pub physical_error_rate: f64,
    /// Wall-clock budget per MaxSAT solve (the paper uses 360 s).
    pub maxsat_budget: Duration,
    /// Maximum subgraph-expansion steps before a sample gives up.
    pub max_subgraph_steps: usize,
    /// Maximum number of distinct ambiguous subgraphs processed per iteration.
    pub max_subgraphs_per_iteration: usize,
    /// Number of worker threads for subgraph sampling and candidate verification.
    pub threads: usize,
    /// Base random seed (the run is deterministic for a fixed seed and thread count).
    pub seed: u64,
}

impl PropHuntConfig {
    /// A small configuration suitable for tests and examples: few iterations, few
    /// samples, single-digit wall-clock seconds on a d=3 surface code.
    pub fn quick(rounds: usize) -> Self {
        PropHuntConfig {
            iterations: 4,
            samples_per_iteration: 40,
            rounds,
            physical_error_rate: 1e-3,
            maxsat_budget: Duration::from_secs(20),
            max_subgraph_steps: 60,
            max_subgraphs_per_iteration: 6,
            threads: 4,
            seed: 0x5eed_0001,
        }
    }

    /// A configuration mirroring the paper's experiment scale (25 iterations, 500
    /// samples per iteration, 360 s MaxSAT budget). Intended for the benchmark harness.
    pub fn paper_like(rounds: usize) -> Self {
        PropHuntConfig {
            iterations: 25,
            samples_per_iteration: 500,
            rounds,
            physical_error_rate: 1e-3,
            maxsat_budget: Duration::from_secs(360),
            max_subgraph_steps: 120,
            max_subgraphs_per_iteration: 24,
            threads: 8,
            seed: 0x5eed_0001,
        }
    }

    /// Overrides the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One iteration's bookkeeping.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Memory basis analysed in this iteration (alternates between Z and X).
    pub basis: MemoryBasis,
    /// Number of distinct ambiguous subgraphs found.
    pub subgraphs_found: usize,
    /// Weights of the minimum-weight logical errors solved this iteration.
    pub solution_weights: Vec<usize>,
    /// Number of candidate changes enumerated before pruning.
    pub candidates_enumerated: usize,
    /// Number of verified changes applied to the schedule.
    pub changes_applied: usize,
    /// CNOT depth of the schedule after this iteration.
    pub depth: usize,
    /// The schedule after this iteration (an intermediate circuit, used by Hook-ZNE).
    pub schedule: ScheduleSpec,
}

/// The result of a PropHunt optimization run.
#[derive(Debug, Clone)]
pub struct OptimizationResult {
    /// The schedule the run started from.
    pub initial_schedule: ScheduleSpec,
    /// The schedule after the final iteration.
    pub final_schedule: ScheduleSpec,
    /// Per-iteration records, including every intermediate schedule.
    pub records: Vec<IterationRecord>,
}

impl OptimizationResult {
    /// Returns the CNOT depth of the final schedule.
    pub fn final_depth(&self) -> usize {
        self.final_schedule.depth().unwrap_or(usize::MAX)
    }

    /// Returns the total number of changes applied across all iterations.
    pub fn total_changes_applied(&self) -> usize {
        self.records.iter().map(|r| r.changes_applied).sum()
    }

    /// Returns the smallest logical-error weight observed during optimization (an upper
    /// bound estimate of the *initial* effective distance).
    pub fn min_weight_seen(&self) -> Option<usize> {
        self.records
            .iter()
            .flat_map(|r| r.solution_weights.iter().copied())
            .min()
    }

    /// Returns every intermediate schedule in order (including the final one).
    pub fn intermediate_schedules(&self) -> Vec<&ScheduleSpec> {
        self.records.iter().map(|r| &r.schedule).collect()
    }
}

/// The PropHunt optimizer for a fixed CSS code.
#[derive(Debug, Clone)]
pub struct PropHunt {
    code: CssCode,
    config: PropHuntConfig,
}

impl PropHunt {
    /// Creates an optimizer for `code` with the given configuration.
    pub fn new(code: CssCode, config: PropHuntConfig) -> Self {
        PropHunt { code, config }
    }

    /// Returns the code being optimized.
    pub fn code(&self) -> &CssCode {
        &self.code
    }

    /// Returns the configuration.
    pub fn config(&self) -> &PropHuntConfig {
        &self.config
    }

    /// Runs the iterative optimization loop starting from `initial` (typically a
    /// coloration circuit).
    ///
    /// # Panics
    ///
    /// Panics if the initial schedule is not valid for the code.
    pub fn optimize(&self, initial: ScheduleSpec) -> OptimizationResult {
        initial
            .validate(&self.code)
            .expect("initial schedule must be valid");
        let mut schedule = initial.clone();
        let mut records = Vec::new();
        for iteration in 0..self.config.iterations {
            let basis = if iteration % 2 == 0 {
                MemoryBasis::Z
            } else {
                MemoryBasis::X
            };
            let record = self.run_iteration(iteration, basis, &mut schedule);
            let stop = record.subgraphs_found == 0 && iteration > 0;
            records.push(record);
            if stop {
                break;
            }
        }
        OptimizationResult {
            initial_schedule: initial,
            final_schedule: schedule,
            records,
        }
    }

    fn run_iteration(
        &self,
        iteration: usize,
        basis: MemoryBasis,
        schedule: &mut ScheduleSpec,
    ) -> IterationRecord {
        let graph = DecodingGraph::build(
            &self.code,
            schedule,
            self.config.rounds,
            basis,
            self.config.physical_error_rate,
        )
        .expect("schedule stays valid across iterations");

        // Stage 1: parallel ambiguous-subgraph sampling.
        let subgraphs = self.sample_subgraphs(&graph, iteration);

        // Stage 2: minimum-weight logical errors per subgraph.
        let mut solved: Vec<(AmbiguousSubgraph, MinWeightSolution)> = Vec::new();
        for sub in subgraphs {
            if let Some(solution) = min_weight_logical_error(&sub, self.config.maxsat_budget) {
                solved.push((sub, solution));
            }
        }
        let solution_weights: Vec<usize> = solved.iter().map(|(_, s)| s.weight).collect();

        // Stage 3 + 4: enumerate and prune candidates, in parallel over subgraphs.
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add(0x9e37_79b9u64.wrapping_mul(iteration as u64 + 1)),
        );
        let mut tasks: Vec<(usize, AmbiguousSubgraph, MinWeightSolution, Vec<crate::CandidateChange>)> =
            Vec::new();
        let mut candidates_enumerated = 0usize;
        for (i, (sub, solution)) in solved.into_iter().enumerate() {
            let candidates = enumerate_candidates(&graph, &self.code, schedule, &solution, &mut rng);
            candidates_enumerated += candidates.len();
            tasks.push((i, sub, solution, candidates));
        }
        let num_groups = tasks.len();
        let mut verified_per_subgraph: Vec<Vec<VerifiedChange>> = vec![Vec::new(); num_groups];
        let code = &self.code;
        let base_schedule = &*schedule;
        let rounds = self.config.rounds;
        let p = self.config.physical_error_rate;
        let graph_ref = &graph;
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (group, sub, solution, candidates) in &tasks {
                for candidate in candidates {
                    handles.push(scope.spawn(move |_| {
                        verify_candidate(
                            code,
                            base_schedule,
                            candidate,
                            sub,
                            solution,
                            graph_ref,
                            rounds,
                            basis,
                            p,
                        )
                        .map(|v| (*group, v))
                    }));
                }
            }
            for handle in handles {
                if let Some((group, verified)) = handle.join().expect("verification thread") {
                    verified_per_subgraph[group].push(verified);
                }
            }
        })
        .expect("crossbeam scope");

        // Stage 5: apply the minimum-depth verified change of each subgraph.
        let subgraphs_found = num_groups;
        let changes_applied = apply_verified_changes(&self.code, schedule, verified_per_subgraph);
        IterationRecord {
            iteration,
            basis,
            subgraphs_found,
            solution_weights,
            candidates_enumerated,
            changes_applied,
            depth: schedule.depth().unwrap_or(usize::MAX),
            schedule: schedule.clone(),
        }
    }

    /// Samples ambiguous subgraphs in parallel and deduplicates them by detector set.
    fn sample_subgraphs(&self, graph: &DecodingGraph, iteration: usize) -> Vec<AmbiguousSubgraph> {
        let threads = self.config.threads.max(1);
        let per_thread = self.config.samples_per_iteration.div_ceil(threads);
        let mut found: Vec<AmbiguousSubgraph> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let seed = self
                    .config
                    .seed
                    .wrapping_add(1 + iteration as u64 * 1000 + t as u64);
                handles.push(scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut local = Vec::new();
                    for _ in 0..per_thread {
                        if let Some(sub) =
                            find_ambiguous_subgraph(graph, &mut rng, self.config.max_subgraph_steps)
                        {
                            local.push(sub);
                        }
                    }
                    local
                }));
            }
            for handle in handles {
                found.extend(handle.join().expect("sampling thread"));
            }
        })
        .expect("crossbeam scope");
        // Deduplicate by detector set and keep the smallest subgraphs first (they give
        // the most targeted changes).
        found.sort_by_key(|s| (s.errors.len(), s.detectors.clone()));
        found.dedup_by(|a, b| a.detectors == b.detectors);
        found.truncate(self.config.max_subgraphs_per_iteration);
        found
    }

    /// Estimates the effective code distance of `schedule` by sampling ambiguous
    /// subgraphs in both memory bases and taking the minimum logical-error weight found.
    ///
    /// Returns `None` if no ambiguous subgraph was found (which, for a complete decoding
    /// graph, only happens when the sampling budget is too small).
    pub fn estimate_effective_distance(
        &self,
        schedule: &ScheduleSpec,
        samples: usize,
    ) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, basis) in [MemoryBasis::Z, MemoryBasis::X].into_iter().enumerate() {
            let graph = DecodingGraph::build(
                &self.code,
                schedule,
                self.config.rounds,
                basis,
                self.config.physical_error_rate,
            )
            .ok()?;
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(7 + i as u64));
            for _ in 0..samples {
                if let Some(sub) =
                    find_ambiguous_subgraph(&graph, &mut rng, self.config.max_subgraph_steps)
                {
                    if let Some(sol) = min_weight_logical_error(&sub, self.config.maxsat_budget) {
                        best = Some(best.map_or(sol.weight, |b| b.min(sol.weight)));
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_qec::surface::rotated_surface_code_with_layout;

    #[test]
    fn quick_config_is_small() {
        let config = PropHuntConfig::quick(3);
        assert!(config.iterations <= 5);
        assert!(config.samples_per_iteration <= 100);
        let paper = PropHuntConfig::paper_like(5);
        assert_eq!(paper.iterations, 25);
        assert_eq!(paper.samples_per_iteration, 500);
    }

    #[test]
    fn optimizing_the_poor_d3_schedule_restores_effective_distance() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let poor = ScheduleSpec::surface_poor(&code, &layout);
        let config = PropHuntConfig::quick(3).with_seed(11);
        let prophunt = PropHunt::new(code.clone(), config);
        // The poor schedule has d_eff = 2.
        let before = prophunt.estimate_effective_distance(&poor, 15).unwrap();
        assert_eq!(before, 2, "poor schedule should expose weight-2 logical errors");
        let result = prophunt.optimize(poor);
        assert!(result.total_changes_applied() >= 1, "optimizer should change the circuit");
        result.final_schedule.validate(prophunt.code()).unwrap();
        let after = prophunt
            .estimate_effective_distance(&result.final_schedule, 15)
            .unwrap();
        assert!(
            after > before,
            "effective distance should improve from {before}, got {after}"
        );
    }

    #[test]
    fn optimizing_an_already_good_schedule_keeps_it_valid() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let good = ScheduleSpec::surface_hand_designed(&code, &layout);
        let config = PropHuntConfig {
            iterations: 2,
            samples_per_iteration: 20,
            ..PropHuntConfig::quick(3)
        };
        let prophunt = PropHunt::new(code, config);
        let result = prophunt.optimize(good.clone());
        result.final_schedule.validate(prophunt.code()).unwrap();
        // The hand-designed schedule already has d_eff = d; whatever the optimizer does,
        // it must not make the minimum observed logical weight smaller than 3.
        let d_eff = prophunt
            .estimate_effective_distance(&result.final_schedule, 10)
            .unwrap();
        assert!(d_eff >= 3, "optimization must not reduce d_eff below 3, got {d_eff}");
    }
}
