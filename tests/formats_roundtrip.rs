//! Integration tests of the `prophunt-formats` interchange layer: the checked-in
//! golden `.dem` fixture, bit-identical LER on parsed-back models, and the
//! optimize → export → resume workflow the `prophunt` CLI is built on.

use prophunt_suite::circuit::schedule::ScheduleSpec;
use prophunt_suite::circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_suite::core::{PropHunt, PropHuntConfig};
use prophunt_suite::decoders::{estimate_logical_error_rate, BpOsdDecoder};
use prophunt_suite::formats::{
    parse_dem, parse_report, parse_schedule, report_to_result, result_to_report, write_dem,
    write_report, write_schedule,
};
use prophunt_suite::qec::surface::rotated_surface_code_with_layout;
use prophunt_suite::runtime::{Runtime, RuntimeConfig};

const GOLDEN_DEM: &str = include_str!("golden/surface_d3_hand_r3_p1e-3.dem");
const GOLDEN_SI1000_DEM: &str = include_str!("golden/surface_d3_hand_r3_si1000_1e-3.dem");

/// The exact model the golden fixture was exported from: d = 3 rotated surface
/// code, hand-designed schedule, 3 rounds, Z memory, p = 1e-3.
fn golden_reference_dem() -> DetectorErrorModel {
    let (code, layout) = rotated_surface_code_with_layout(3);
    let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
    let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
    DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3))
}

/// The same experiment under the SI1000 noise family at p = 1e-3 — the second
/// golden-pinned noise model (the family shipped with the Session/Job redesign
/// but only the uniform model was golden-pinned until now).
fn golden_si1000_reference_dem() -> DetectorErrorModel {
    let (code, layout) = rotated_surface_code_with_layout(3);
    let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
    let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
    DetectorErrorModel::from_experiment(&exp, &NoiseModel::si1000(1e-3))
}

#[test]
fn golden_dem_fixture_matches_the_writer_byte_for_byte() {
    let dem = golden_reference_dem();
    assert_eq!(
        write_dem(&dem),
        GOLDEN_DEM,
        "the exported d=3 DEM changed; if intentional, regenerate tests/golden/ (see FORMATS.md)"
    );
}

#[test]
fn golden_si1000_dem_fixture_matches_the_writer_byte_for_byte() {
    let dem = golden_si1000_reference_dem();
    assert_eq!(
        write_dem(&dem),
        GOLDEN_SI1000_DEM,
        "the exported si1000 d=3 DEM changed; if intentional, regenerate tests/golden/ with \
         `prophunt dem --code surface:3 --schedule hand --rounds 3 --noise si1000:0.001` \
         (see FORMATS.md)"
    );
}

#[test]
fn golden_si1000_dem_parses_back_to_the_same_distribution() {
    let parsed = parse_dem(GOLDEN_SI1000_DEM).unwrap();
    let reference = golden_si1000_reference_dem();
    assert!(parsed.same_distribution(&reference));
    assert_eq!(parsed.num_detectors(), 24);
    assert_eq!(parsed.num_observables(), 1);
    // SI1000 is a genuinely different distribution from uniform depolarizing at
    // the same p — the fixture must not silently alias the uniform one.
    assert!(!parsed.same_distribution(&golden_reference_dem()));
}

#[test]
fn golden_dem_parses_back_to_the_same_distribution() {
    let parsed = parse_dem(GOLDEN_DEM).unwrap();
    let reference = golden_reference_dem();
    assert!(parsed.same_distribution(&reference));
    assert_eq!(parsed.num_detectors(), 24);
    assert_eq!(parsed.num_observables(), 1);
}

#[test]
fn parsed_golden_dem_gives_bit_identical_ler_counts() {
    let reference = golden_reference_dem();
    let parsed = parse_dem(GOLDEN_DEM).unwrap();
    let dec_ref = BpOsdDecoder::new(&reference);
    let dec_parsed = BpOsdDecoder::new(&parsed);
    let (shots, seed, chunk_size) = (600, 42, 64);
    let baseline = estimate_logical_error_rate(
        &reference,
        &dec_ref,
        shots,
        seed,
        &Runtime::new(RuntimeConfig::new(1, chunk_size, 0)),
    );
    // The parsed-back model must reproduce the failure count bit-for-bit at the
    // fixed (seed, chunk_size), at any thread count.
    for threads in [1, 4] {
        let estimate = estimate_logical_error_rate(
            &parsed,
            &dec_parsed,
            shots,
            seed,
            &Runtime::new(RuntimeConfig::new(threads, chunk_size, 0)),
        );
        assert_eq!(estimate.failures, baseline.failures, "threads = {threads}");
        assert_eq!(estimate.shots, baseline.shots);
    }
}

#[test]
fn exported_schedule_resumes_to_the_same_final_depth() {
    // The CLI acceptance workflow: optimize, write the final schedule file,
    // then re-run with --resume from that file. The resumed run must reproduce
    // the same final depth.
    let (code, _) = rotated_surface_code_with_layout(3);
    let initial = ScheduleSpec::coloration(&code);
    let config = PropHuntConfig::quick(3).with_seed(11);
    let prophunt = PropHunt::new(code.clone(), config);
    let first = prophunt.try_optimize(initial).unwrap();

    let schedule_file = write_schedule(&first.final_schedule);
    let resumed_from = parse_schedule(&schedule_file).unwrap();
    assert_eq!(resumed_from, first.final_schedule);

    let resumed = prophunt.try_optimize(resumed_from).unwrap();
    resumed.final_schedule.validate(&code).unwrap();
    assert_eq!(
        resumed.final_depth(),
        first.final_depth(),
        "resuming from the exported schedule must reproduce the final depth"
    );
}

#[test]
fn search_report_resumes_to_the_same_final_depth() {
    // The `prophunt search --resume <report>` workflow: run a search that
    // streams incumbent records, re-seed a second portfolio from the last
    // incumbent's embedded schedule, and check the resumed run starts at — and
    // never regresses from — the first run's final depth.
    use prophunt_suite::api::{Event, ExperimentSpec, SearchJob, Session};
    use prophunt_suite::formats::report::ReportRecord;

    let spec = ExperimentSpec::builder()
        .code_family("surface:3")
        .unwrap()
        .build()
        .unwrap();
    let code = spec.code().clone();
    let job = SearchJob::new(spec.clone())
        .with_rounds(3)
        .with_proposals(16)
        .with_samples(10);
    let mut session = Session::new(RuntimeConfig::new(2, 64, 11));
    // Stream incumbent records exactly like `prophunt search` writes them.
    let mut records = Vec::new();
    let first = session
        .run_search(&job, |event| {
            if let Event::Incumbent {
                round,
                strategy,
                instance,
                depth,
                improved,
                schedule,
            } = event
            {
                records.push(ReportRecord::Incumbent {
                    round: *round as u64,
                    strategy: strategy.clone(),
                    instance: *instance as u64,
                    depth: *depth as u64,
                    improved: *improved,
                    schedule: write_schedule(schedule),
                });
            }
        })
        .unwrap();

    // Round-trip the report through the on-disk format and pull the last
    // incumbent, as the CLI's --resume does.
    let parsed = parse_report(&write_report(&records)).unwrap();
    let last = parsed
        .iter()
        .rev()
        .find_map(|record| match record {
            ReportRecord::Incumbent { schedule, .. } => Some(schedule.clone()),
            _ => None,
        })
        .expect("search reports always carry one incumbent record per round");
    let resumed_from = parse_schedule(&last).unwrap();
    assert_eq!(resumed_from, first.result.best.schedule);
    resumed_from.validate_for_code(&code).unwrap();

    let resumed_job = SearchJob::new(
        spec.with_schedule(resumed_from.clone())
            .expect("resumed schedule is valid"),
    )
    .with_rounds(2)
    .with_proposals(16)
    .with_samples(10);
    let resumed = session.run_search_quiet(&resumed_job).unwrap();
    assert_eq!(
        resumed.result.initial_depth, first.result.best.depth,
        "the resumed portfolio must start from the first run's final depth"
    );
    assert!(
        resumed.result.best.depth <= first.result.best.depth,
        "resuming must never regress the incumbent depth"
    );
    resumed
        .result
        .best
        .schedule
        .validate_for_code(&code)
        .unwrap();
}

#[test]
fn optimization_reports_round_trip_through_json_lines() {
    let (code, layout) = rotated_surface_code_with_layout(3);
    let poor = ScheduleSpec::surface_poor(&code, &layout);
    let config = PropHuntConfig {
        iterations: 2,
        samples_per_iteration: 15,
        ..PropHuntConfig::quick(3)
    };
    let seed = config.seed();
    let chunk = config.runtime.chunk_size;
    let prophunt = PropHunt::new(code.clone(), config);

    // Stream records through the observer exactly like `prophunt optimize` does.
    let mut streamed = Vec::new();
    let result = prophunt
        .try_optimize_with_observer(poor, |record| streamed.push(record.clone()))
        .unwrap();
    assert_eq!(streamed, result.records);

    let text = write_report(&result_to_report(&result, code.name(), seed, chunk));
    let rebuilt = report_to_result(&parse_report(&text).unwrap()).unwrap();
    assert_eq!(rebuilt, result);
}

#[test]
fn dem_export_of_an_optimized_schedule_round_trips_with_identical_ler() {
    // End-to-end file workflow: optimize, export the DEM of the final schedule,
    // parse it back, and compare Monte-Carlo failure counts bit-for-bit.
    let (code, layout) = rotated_surface_code_with_layout(3);
    let poor = ScheduleSpec::surface_poor(&code, &layout);
    let prophunt = PropHunt::new(code.clone(), PropHuntConfig::quick(3).with_seed(7));
    let result = prophunt.try_optimize(poor).unwrap();
    let exp = MemoryExperiment::build(&code, &result.final_schedule, 3, MemoryBasis::Z).unwrap();
    let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(3e-3));

    let parsed = parse_dem(&write_dem(&dem)).unwrap();
    assert!(parsed.same_distribution(&dem));

    let runtime = Runtime::new(RuntimeConfig::new(2, 64, 0));
    let in_memory = estimate_logical_error_rate(&dem, &BpOsdDecoder::new(&dem), 400, 9, &runtime);
    let from_file =
        estimate_logical_error_rate(&parsed, &BpOsdDecoder::new(&parsed), 400, 9, &runtime);
    assert_eq!(in_memory.failures, from_file.failures);
}
