// A justified suppression: the finding is reported as suppressed.
use std::time::Instant;

pub fn stamp() -> Instant {
    // lint: allow(no-wall-clock) — timing-only: feeds a log line, never the counts
    Instant::now()
}

pub fn stamp_multiline() -> Instant {
    // lint: allow(no-wall-clock) — timing-only: this justification continues
    // onto a second comment line and still covers the code below it.
    Instant::now()
}

pub fn stamp_trailing() -> Instant {
    Instant::now() // lint: allow(no-wall-clock) — trailing-form suppression
}
