//! Determinism across thread counts.
//!
//! The contract of the `prophunt-runtime` layer: every result is a pure
//! function of `(seed, chunk_size)` — the worker-thread count may only change
//! wall-clock time. These tests pin that down end-to-end for the optimizer
//! and for Monte-Carlo logical-error-rate estimation, at thread counts 1, 2
//! and 8.

use prophunt_suite::circuit::schedule::ScheduleSpec;
use prophunt_suite::circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_suite::core::{OptimizationResult, PropHunt, PropHuntConfig};
use prophunt_suite::decoders::{
    estimate_logical_error_rate, estimate_with_budget, BpOsdDecoder, ChunkProgress, LerStopReason,
    ShotBudget,
};
use prophunt_suite::qec::surface::rotated_surface_code_with_layout;
use prophunt_suite::runtime::{Runtime, RuntimeConfig};

fn optimize_poor_d3(threads: usize) -> OptimizationResult {
    let (code, layout) = rotated_surface_code_with_layout(3);
    let poor = ScheduleSpec::surface_poor(&code, &layout);
    let mut config = PropHuntConfig::quick(3).with_seed(11);
    config.runtime.threads = threads;
    PropHunt::new(code, config)
        .try_optimize(poor)
        .expect("poor schedule is valid")
}

#[test]
fn optimizer_records_are_bit_identical_across_thread_counts() {
    let reference = optimize_poor_d3(1);
    assert!(
        !reference.records.is_empty() && reference.total_changes_applied() >= 1,
        "reference run should do real work"
    );
    for threads in [2, 8] {
        let result = optimize_poor_d3(threads);
        assert_eq!(
            result.records.len(),
            reference.records.len(),
            "iteration count diverged at threads = {threads}"
        );
        for (got, want) in result.records.iter().zip(&reference.records) {
            assert_eq!(
                got, want,
                "iteration {} diverged at threads = {threads}",
                want.iteration
            );
        }
        assert_eq!(result, reference, "threads = {threads}");
    }
}

#[test]
fn effective_distance_is_identical_across_thread_counts() {
    let (code, layout) = rotated_surface_code_with_layout(3);
    let poor = ScheduleSpec::surface_poor(&code, &layout);
    let estimate = |threads: usize| {
        let mut config = PropHuntConfig::quick(3).with_seed(7);
        config.runtime.threads = threads;
        PropHunt::new(code.clone(), config).estimate_effective_distance(&poor, 12)
    };
    let reference = estimate(1);
    assert_eq!(reference, Some(2), "poor d=3 schedule has d_eff = 2");
    for threads in [2, 8] {
        assert_eq!(estimate(threads), reference, "threads = {threads}");
    }
}

#[test]
fn ler_failure_counts_are_identical_across_thread_counts() {
    let (code, layout) = rotated_surface_code_with_layout(3);
    let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
    let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
    let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(8e-3));
    let decoder = BpOsdDecoder::new(&dem);
    let estimate = |threads: usize| {
        let runtime = Runtime::new(RuntimeConfig::new(threads, 64, 0));
        estimate_logical_error_rate(&dem, &decoder, 600, 42, &runtime)
    };
    let reference = estimate(1);
    assert!(
        reference.failures > 0,
        "want nonzero failures to make the comparison meaningful"
    );
    for threads in [2, 8] {
        let estimate = estimate(threads);
        assert_eq!(estimate.failures, reference.failures, "threads = {threads}");
        assert_eq!(estimate.shots, reference.shots);
    }
}

/// Satellite of the Session/Job redesign: an adaptive (`MaxFailures` /
/// `TargetRse`) run must stop at a *chunk boundary* and report exactly the
/// cumulative tally of the corresponding chunk prefix of the `Fixed` run with
/// the same `(seed, chunk_size)` — at every thread count.
#[test]
fn adaptive_budgets_equal_the_fixed_run_chunk_prefix_at_any_thread_count() {
    let (code, layout) = rotated_surface_code_with_layout(3);
    let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
    let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
    let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(2e-2));
    let decoder = BpOsdDecoder::new(&dem);
    let (seed, chunk_size, max_shots) = (42u64, 32usize, 1024usize);

    // Reference: the fixed run's cumulative per-chunk tallies at 1 thread.
    let mut prefix: Vec<ChunkProgress> = Vec::new();
    let (full, _) = estimate_with_budget(
        &dem,
        &decoder,
        ShotBudget::fixed(max_shots),
        seed,
        &Runtime::new(RuntimeConfig::new(1, chunk_size, 0)),
        &mut |p| prefix.push(p),
    );
    assert_eq!(prefix.len(), max_shots / chunk_size);
    assert!(full.failures >= 6, "need failures, got {}", full.failures);

    let max_failures = full.failures / 2;
    let expected_failures_prefix = prefix
        .iter()
        .find(|p| p.failures >= max_failures)
        .copied()
        .expect("threshold below the total must be crossed");
    // Pick an RSE target crossed strictly inside the run: the RSE at ~3/4 of
    // the chunks, nudged up so the crossing chunk is unambiguous.
    let rse_at = |p: &ChunkProgress| {
        let rate = p.failures as f64 / p.shots as f64;
        ((1.0 - rate) / (rate * p.shots as f64)).sqrt()
    };
    let target = rse_at(&prefix[prefix.len() * 3 / 4]) * 1.001;
    let expected_rse_prefix = prefix
        .iter()
        .find(|p| p.failures > 0 && rse_at(p) <= target)
        .copied()
        .expect("target must be crossed");

    for threads in [1, 2, 8] {
        let runtime = Runtime::new(RuntimeConfig::new(threads, chunk_size, 0));
        let mut seen: Vec<ChunkProgress> = Vec::new();
        let (estimate, stop) = estimate_with_budget(
            &dem,
            &decoder,
            ShotBudget::MaxFailures {
                max_failures,
                max_shots,
            },
            seed,
            &runtime,
            &mut |p| seen.push(p),
        );
        assert_eq!(stop, LerStopReason::MaxFailuresReached, "threads {threads}");
        assert_eq!(estimate.shots, expected_failures_prefix.shots);
        assert_eq!(estimate.failures, expected_failures_prefix.failures);
        assert!(estimate.shots < max_shots, "must stop early");
        // The observer stream is the exact chunk prefix, in order.
        assert_eq!(seen, prefix[..seen.len()], "threads {threads}");

        let (estimate, stop) = estimate_with_budget(
            &dem,
            &decoder,
            ShotBudget::TargetRse { target, max_shots },
            seed,
            &runtime,
            &mut |_| {},
        );
        assert_eq!(stop, LerStopReason::TargetRseReached, "threads {threads}");
        assert_eq!(estimate.shots, expected_rse_prefix.shots);
        assert_eq!(estimate.failures, expected_rse_prefix.failures);
    }
}

#[test]
fn chunk_size_is_part_of_the_deterministic_contract() {
    // Different chunk sizes may legitimately give different (equally valid)
    // streams; the contract is fixed (seed, chunk_size) => fixed result.
    let (code, layout) = rotated_surface_code_with_layout(3);
    let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
    let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
    let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(8e-3));
    let decoder = BpOsdDecoder::new(&dem);
    let estimate = |threads: usize, chunk: usize| {
        let runtime = Runtime::new(RuntimeConfig::new(threads, chunk, 0));
        estimate_logical_error_rate(&dem, &decoder, 500, 9, &runtime).failures
    };
    assert_eq!(estimate(1, 32), estimate(8, 32));
    assert_eq!(estimate(1, 17), estimate(4, 17));
}

/// Satellite of the bit-parallel frame engine: a `--engine frames` run is a
/// pure function of `(seed, chunk_size, engine)` — the whole outcome (per-basis
/// counts, stop reason, engine tag) is bit-identical at 1, 2 and 8 threads.
#[test]
fn frame_engine_outcomes_are_bit_identical_across_thread_counts() {
    use prophunt_suite::api::{Engine, ExperimentSpec, LerJob, Session, ShotBudget};
    let run = |threads: usize| {
        let spec = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .noise_str("depolarizing:0.008")
            .unwrap()
            .engine(Engine::Frames)
            .build()
            .unwrap();
        let mut session = Session::new(RuntimeConfig::new(threads, 64, 42));
        session
            .run_ler_quiet(&LerJob::new(spec).with_budget(ShotBudget::fixed(600)))
            .unwrap()
    };
    let reference = run(1);
    assert_eq!(reference.engine, Engine::Frames);
    assert_eq!(reference.combined.shots, 600);
    assert!(
        reference.combined.failures > 0,
        "want nonzero failures to make the comparison meaningful"
    );
    for threads in [2, 8] {
        let outcome = run(threads);
        assert_eq!(
            outcome.per_basis, reference.per_basis,
            "threads = {threads}"
        );
        assert_eq!(outcome.combined, reference.combined, "threads = {threads}");
        assert_eq!(outcome.stop, reference.stop, "threads = {threads}");
    }
}

/// Tentpole of the `prophunt-search` subsystem: a portfolio run is a pure
/// function of `(seed, chunk_size)` — the best schedule *and* the whole
/// per-round incumbent event sequence are bit-identical at 1, 2 and 8 threads,
/// with all four strategies (including the MaxSAT-descent arm) racing.
#[test]
fn search_portfolio_results_and_event_streams_are_bit_identical_across_thread_counts() {
    use prophunt_suite::api::{Event, ExperimentSpec, SearchJob, Session};
    let run = |threads: usize| {
        let spec = ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .build()
            .unwrap();
        let mut session = Session::new(RuntimeConfig::new(threads, 64, 11));
        let job = SearchJob::new(spec)
            .with_rounds(4)
            .with_proposals(16)
            .with_samples(10);
        let mut events: Vec<Event> = Vec::new();
        let outcome = session
            .run_search(&job, |event| events.push(event.clone()))
            .unwrap();
        (outcome, events)
    };
    let (reference, reference_events) = run(1);
    assert!(
        reference.result.best.depth < reference.result.initial_depth,
        "reference run should do real work (got depth {} from {})",
        reference.result.best.depth,
        reference.result.initial_depth
    );
    for threads in [2, 8] {
        let (outcome, events) = run(threads);
        assert_eq!(
            outcome.result.best.schedule, reference.result.best.schedule,
            "best schedule diverged at threads = {threads}"
        );
        assert_eq!(
            outcome.result, reference.result,
            "round records diverged at threads = {threads}"
        );
        assert_eq!(
            events, reference_events,
            "incumbent event sequence diverged at threads = {threads}"
        );
    }
}
