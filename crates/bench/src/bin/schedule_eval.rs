//! Incremental vs from-scratch proposal-evaluation throughput on the Table 1
//! code suite.
//!
//! This is the bench behind the `ScheduleEval` engine's acceptance claim. For
//! every benchmark code — rotated surface d = 3..9, the generalized-bicycle
//! instances, and the bivariate-bicycle `bb_72_12` — it drives one seeded
//! hill-climbing walk over the shared move universe and evaluates **every**
//! proposal twice:
//!
//! * **from scratch** — clone the current [`ScheduleSpec`], apply the move's
//!   primitive operations, re-run the full `check_commutation` scan and the
//!   complete dependency-DAG relayering for the depth (exactly what
//!   `MoveSet::propose` did before the incremental engine);
//! * **incrementally** — `ScheduleEval::try_ops` on the walk's live evaluator
//!   (parity-counter commutation deltas + cone relayering), including the
//!   `revert` cost for rejected proposals.
//!
//! The two paths must agree on validity and depth for every single proposal
//! (the bin aborts loudly otherwise — this is the CI smoke assertion), and
//! the incremental path must never be slower. The committed
//! `BENCH_eval.json` records the full-profile run; `PROPHUNT_SMOKE=1` trims
//! the proposal budget for CI.

use prophunt_bench::{benchmark_suite, runtime_config_from_env, stage_seed};
use prophunt_circuit::schedule::eval::ScheduleEval;
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_formats::report::ReportRecord;
use prophunt_formats::{write_report, Json};
use prophunt_search::MoveSet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

struct EvalRow {
    code: String,
    proposals: usize,
    accepted: usize,
    initial_depth: usize,
    final_depth: usize,
    scratch: Duration,
    incremental: Duration,
}

impl EvalRow {
    fn speedup(&self) -> f64 {
        self.scratch.as_secs_f64() / self.incremental.as_secs_f64().max(1e-12)
    }

    fn to_record(&self) -> ReportRecord {
        ReportRecord::Table {
            name: "schedule_eval".into(),
            fields: vec![
                ("code".into(), Json::Str(self.code.clone())),
                ("proposals".into(), Json::UInt(self.proposals as u64)),
                ("accepted".into(), Json::UInt(self.accepted as u64)),
                (
                    "initial_depth".into(),
                    Json::UInt(self.initial_depth as u64),
                ),
                ("final_depth".into(), Json::UInt(self.final_depth as u64)),
                (
                    "scratch_us_per_proposal".into(),
                    Json::Float(self.scratch.as_secs_f64() * 1e6 / self.proposals as f64),
                ),
                (
                    "incremental_us_per_proposal".into(),
                    Json::Float(self.incremental.as_secs_f64() * 1e6 / self.proposals as f64),
                ),
                ("speedup".into(), Json::Float(self.speedup())),
            ],
        }
    }
}

fn main() {
    let smoke = std::env::var("PROPHUNT_SMOKE").is_ok();
    let runtime = runtime_config_from_env();
    let proposals = if smoke { 300 } else { 3000 };
    println!("Proposal evaluation: incremental ScheduleEval vs from-scratch validate+depth");
    println!(
        "  {proposals} proposals per code, seed {} (PROPHUNT_SMOKE=1 trims the budget)",
        runtime.seed
    );
    println!(
        "{:<14} {:>9} {:>9} {:>7} {:>14} {:>14} {:>9}",
        "code", "proposals", "accepted", "depth", "scratch us/ev", "incr us/ev", "speedup"
    );
    let mut records = Vec::new();
    let mut suite_scratch = Duration::ZERO;
    let mut suite_incremental = Duration::ZERO;
    for (stage, bench) in benchmark_suite(true).into_iter().enumerate() {
        let code = bench.code;
        let initial = ScheduleSpec::coloration(&code);
        let initial_depth = initial.depth().unwrap();
        let moves = MoveSet::new(&initial);
        let mut eval = ScheduleEval::new(initial).unwrap();
        let mut rng = StdRng::seed_from_u64(stage_seed(&runtime, 60 + stage as u64));
        let mut current_depth = initial_depth;
        let mut accepted = 0usize;
        let mut t_scratch = Duration::ZERO;
        let mut t_incremental = Duration::ZERO;
        for _ in 0..proposals {
            let Some(mv) = moves.draw(eval.spec(), &mut rng) else {
                continue;
            };
            let ops = eval.resolve(&mv);

            // From-scratch path: exactly the pre-engine proposal evaluation.
            let t = Instant::now();
            let mut scratch = eval.spec().clone();
            for op in &ops {
                op.apply(&mut scratch);
            }
            let scratch_depth = if scratch.check_commutation(&code).is_ok() {
                scratch.depth().ok()
            } else {
                None
            };
            t_scratch += t.elapsed();

            // Incremental path (including the revert cost of rejections).
            let t = Instant::now();
            let incremental_depth = eval.try_ops(&ops);
            let keep = matches!(incremental_depth, Some(d) if d <= current_depth);
            if incremental_depth.is_some() {
                if keep {
                    eval.commit();
                } else {
                    eval.revert();
                }
            }
            t_incremental += t.elapsed();

            assert_eq!(
                incremental_depth,
                scratch_depth,
                "incremental and from-scratch evaluation disagree on {} (move {mv:?})",
                code.name()
            );
            if keep {
                current_depth = incremental_depth.unwrap();
                accepted += 1;
            }
        }
        let row = EvalRow {
            code: code.name().to_string(),
            proposals,
            accepted,
            initial_depth,
            final_depth: current_depth,
            scratch: t_scratch,
            incremental: t_incremental,
        };
        println!(
            "{:<14} {:>9} {:>9} {:>4}->{:<2} {:>14.2} {:>14.2} {:>8.1}x",
            row.code,
            row.proposals,
            row.accepted,
            row.initial_depth,
            row.final_depth,
            row.scratch.as_secs_f64() * 1e6 / row.proposals as f64,
            row.incremental.as_secs_f64() * 1e6 / row.proposals as f64,
            row.speedup()
        );
        // Per-code timing gates only run at the full budget: the smoke
        // profile's per-code windows are sub-millisecond on the small codes,
        // where one scheduler stall on a loaded CI runner could flip the
        // comparison with no code defect. (The depth-equality assert above is
        // the deterministic gate and always runs.)
        if !smoke {
            assert!(
                row.speedup() >= 1.0,
                "incremental evaluation must not be slower than from-scratch on {}",
                row.code
            );
        }
        suite_scratch += row.scratch;
        suite_incremental += row.incremental;
        records.push(row.to_record());
    }
    let suite_speedup = suite_scratch.as_secs_f64() / suite_incremental.as_secs_f64().max(1e-12);
    println!(
        "{:<14} {:>62} {:>8.1}x",
        "suite", "(aggregate proposal-evaluation throughput)", suite_speedup
    );
    assert!(
        suite_speedup >= 1.0,
        "incremental evaluation must not be slower than from-scratch on the suite"
    );
    records.push(ReportRecord::Table {
        name: "schedule_eval".into(),
        fields: vec![
            ("code".into(), Json::Str("suite".into())),
            ("speedup".into(), Json::Float(suite_speedup)),
        ],
    });
    if smoke {
        // Never clobber the committed full-profile baseline with trimmed
        // smoke numbers.
        println!("smoke mode: skipping BENCH_eval.json (baseline is the full profile)");
    } else {
        std::fs::write("BENCH_eval.json", write_report(&records))
            .expect("cannot write BENCH_eval.json");
        println!("wrote BENCH_eval.json ({} rows)", records.len());
    }
}
