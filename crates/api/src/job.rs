//! Typed jobs ([`OptimizeJob`], [`LerJob`]), the unified [`Event`] stream and job
//! outcomes.

use crate::noise::NoiseSpec;
use crate::spec::ExperimentSpec;
use prophunt::{IterationRecord, OptimizationResult};
use prophunt_circuit::MemoryBasis;
use prophunt_decoders::{Engine, LerStopReason, LogicalErrorEstimate, ShotBudget};
use prophunt_formats::ReportRecord;
use std::time::Duration;

/// Which kind of job emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A [`OptimizeJob`].
    Optimize,
    /// A [`LerJob`].
    Ler,
    /// A [`crate::SearchJob`].
    Search,
}

/// Why a job stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The optimizer found no further ambiguous subgraphs.
    Converged {
        /// Iterations recorded when the run converged.
        iterations: usize,
    },
    /// The optimizer used its full iteration budget.
    IterationLimit {
        /// Iterations recorded.
        iterations: usize,
    },
    /// An estimation run sampled its whole (maximum) shot budget.
    ShotsExhausted,
    /// A [`ShotBudget::MaxFailures`] rule stopped the run early.
    MaxFailuresReached,
    /// A [`ShotBudget::TargetRse`] rule stopped the run early.
    TargetRseReached,
    /// A portfolio search ran its full round budget.
    RoundLimit {
        /// Rounds recorded.
        rounds: usize,
    },
}

impl StopReason {
    /// A stable machine-readable name (stored in report records).
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::Converged { .. } => "converged",
            StopReason::IterationLimit { .. } => "iteration_limit",
            StopReason::ShotsExhausted => "shots_exhausted",
            StopReason::MaxFailuresReached => "max_failures",
            StopReason::TargetRseReached => "target_rse",
            StopReason::RoundLimit { .. } => "round_limit",
        }
    }

    /// Whether the job ended before exhausting its budget.
    pub fn stopped_early(&self) -> bool {
        matches!(
            self,
            StopReason::Converged { .. }
                | StopReason::MaxFailuresReached
                | StopReason::TargetRseReached
        )
    }
}

impl From<LerStopReason> for StopReason {
    fn from(reason: LerStopReason) -> Self {
        match reason {
            LerStopReason::ShotsExhausted => StopReason::ShotsExhausted,
            LerStopReason::MaxFailuresReached => StopReason::MaxFailuresReached,
            LerStopReason::TargetRseReached => StopReason::TargetRseReached,
        }
    }
}

/// One event of a job's progress stream — the single observer channel replacing
/// the optimizer's bespoke iteration closure and the CLI's hand-rolled streaming.
///
/// Events arrive in a deterministic order: the stream is a pure function of the
/// job and the session's `(seed, chunk_size)`, never of the thread count.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A job started running.
    JobStarted {
        /// The kind of job.
        kind: JobKind,
        /// The job's label (for display/logging).
        label: String,
    },
    /// An optimization iteration completed.
    Iteration(IterationRecord),
    /// An estimation chunk completed; counts are cumulative for the current basis.
    ShotChunk {
        /// Basis of the running memory experiment.
        basis: MemoryBasis,
        /// Index of the completed chunk (0-based).
        chunk: usize,
        /// Cumulative shots in this basis.
        shots: usize,
        /// Cumulative failures in this basis.
        failures: usize,
    },
    /// A portfolio-search round completed; the fields describe the incumbent
    /// after the round, with full per-strategy provenance.
    Incumbent {
        /// Round number (0-based).
        round: usize,
        /// Name of the strategy that produced the incumbent
        /// ([`prophunt_search::StrategyKind::name`], or `"initial"` while the
        /// starting schedule still leads).
        strategy: String,
        /// Portfolio instance slot that produced the incumbent.
        instance: usize,
        /// CNOT depth of the incumbent.
        depth: usize,
        /// Whether this round strictly improved the incumbent.
        improved: bool,
        /// The incumbent schedule itself (what `prophunt search` streams as
        /// `incumbent` report records).
        schedule: prophunt_circuit::ScheduleSpec,
    },
    /// The job finished.
    JobFinished {
        /// Why it stopped.
        stop: StopReason,
    },
}

/// A logical-error-rate estimation job: one [`ExperimentSpec`] run under a
/// [`ShotBudget`].
#[derive(Debug, Clone)]
pub struct LerJob {
    /// The experiment to estimate.
    pub spec: ExperimentSpec,
    /// The shot budget (default: fixed 2000 shots).
    pub budget: ShotBudget,
    /// Seed override; `None` uses the session runtime's seed.
    pub seed: Option<u64>,
    /// Label used in events and report records (default: the schedule label).
    pub label: Option<String>,
}

impl LerJob {
    /// Creates a job with the default budget (fixed 2000 shots).
    pub fn new(spec: ExperimentSpec) -> LerJob {
        LerJob {
            spec,
            budget: ShotBudget::fixed(2000),
            seed: None,
            label: None,
        }
    }

    /// Sets the shot budget.
    pub fn with_budget(mut self, budget: ShotBudget) -> LerJob {
        self.budget = budget;
        self
    }

    /// Overrides the seed (default: the session runtime's seed).
    pub fn with_seed(mut self, seed: u64) -> LerJob {
        self.seed = Some(seed);
        self
    }

    /// Sets the record/event label.
    pub fn with_label(mut self, label: impl Into<String>) -> LerJob {
        self.label = Some(label.into());
        self
    }

    /// The effective label.
    pub fn label(&self) -> &str {
        self.label
            .as_deref()
            .unwrap_or_else(|| self.spec.schedule_label())
    }
}

/// An optimization job: run the PropHunt loop on an [`ExperimentSpec`]'s code,
/// schedule and noise model.
#[derive(Debug, Clone)]
pub struct OptimizeJob {
    /// The experiment whose schedule is optimized.
    pub spec: ExperimentSpec,
    /// Maximum optimization iterations.
    pub iterations: usize,
    /// Subgraph-expansion samples per iteration.
    pub samples_per_iteration: usize,
    /// Wall-clock budget per MaxSAT solve.
    pub maxsat_budget: Duration,
    /// Maximum subgraph-expansion steps before a sample gives up.
    pub max_subgraph_steps: usize,
    /// Maximum distinct ambiguous subgraphs processed per iteration.
    pub max_subgraphs_per_iteration: usize,
    /// Seed override; `None` uses the session runtime's seed.
    pub seed: Option<u64>,
    /// Label used in events (default: the code name).
    pub label: Option<String>,
}

impl OptimizeJob {
    /// Creates a job with the quick-profile defaults (4 iterations, 40 samples).
    pub fn new(spec: ExperimentSpec) -> OptimizeJob {
        OptimizeJob {
            spec,
            iterations: 4,
            samples_per_iteration: 40,
            maxsat_budget: Duration::from_secs(20),
            max_subgraph_steps: 60,
            max_subgraphs_per_iteration: 6,
            seed: None,
            label: None,
        }
    }

    /// Switches to the paper-scale profile (25 iterations, 500 samples, 360 s
    /// MaxSAT budget, wider subgraph search).
    pub fn paper_profile(mut self) -> OptimizeJob {
        self.iterations = 25;
        self.samples_per_iteration = 500;
        self.maxsat_budget = Duration::from_secs(360);
        self.max_subgraph_steps = 120;
        self.max_subgraphs_per_iteration = 24;
        self
    }

    /// Sets the iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> OptimizeJob {
        self.iterations = iterations;
        self
    }

    /// Sets the per-iteration sample count.
    pub fn with_samples(mut self, samples: usize) -> OptimizeJob {
        self.samples_per_iteration = samples;
        self
    }

    /// Sets the MaxSAT budget (enforced as a deterministic conflict budget;
    /// see `prophunt_maxsat::MaxSatSolver::solve`).
    pub fn with_maxsat_budget(mut self, budget: Duration) -> OptimizeJob {
        self.maxsat_budget = budget;
        self
    }

    /// Overrides the seed (default: the session runtime's seed).
    pub fn with_seed(mut self, seed: u64) -> OptimizeJob {
        self.seed = Some(seed);
        self
    }

    /// Sets the event label.
    pub fn with_label(mut self, label: impl Into<String>) -> OptimizeJob {
        self.label = Some(label.into());
        self
    }

    /// The effective label.
    pub fn label(&self) -> &str {
        self.label
            .as_deref()
            .unwrap_or_else(|| self.spec.code().name())
    }
}

/// One basis' share of a [`LerOutcome`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BasisEstimate {
    /// The memory basis.
    pub basis: MemoryBasis,
    /// The estimate for that basis.
    pub estimate: LogicalErrorEstimate,
    /// Why that basis' run stopped.
    pub stop: StopReason,
}

/// The result of a [`LerJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct LerOutcome {
    /// Per-basis estimates in run order.
    pub per_basis: Vec<BasisEstimate>,
    /// The combined estimate (sum of shots and failures across bases).
    pub combined: LogicalErrorEstimate,
    /// The overall stop reason: the first adaptive stop across bases, else
    /// [`StopReason::ShotsExhausted`].
    pub stop: StopReason,
    /// The seed the estimate was computed with (reproduces the counts with
    /// [`LerOutcome::chunk_size`] at any thread count).
    pub seed: u64,
    /// The deterministic chunk size.
    pub chunk_size: usize,
    /// Decoder registry name.
    pub decoder: String,
    /// The noise specification; `None` for models loaded from a pre-built `.dem`
    /// file, whose error distribution is baked in (recorded as an empty noise
    /// string, per the report-v2 contract).
    pub noise: Option<NoiseSpec>,
    /// Physical error rate (from the noise spec).
    pub p: f64,
    /// Idle error strength (from the noise spec).
    pub idle: f64,
    /// The estimation engine the counts were computed with (part of the
    /// reproduction key alongside `seed` and `chunk_size`).
    pub engine: Engine,
    /// Wall-clock duration of the whole job.
    pub wall: Duration,
}

impl LerOutcome {
    /// Decoding throughput over the whole job (0 when the duration was not
    /// measurable).
    pub fn shots_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.combined.shots as f64 / secs
    }

    /// Builds the v2 `ler` report record for this outcome.
    pub fn to_record(&self, label: impl Into<String>) -> ReportRecord {
        ReportRecord::Ler {
            label: label.into(),
            p: self.p,
            idle: self.idle,
            shots: self.combined.shots as u64,
            failures: self.combined.failures as u64,
            seed: self.seed,
            chunk_size: self.chunk_size as u64,
            decoder: self.decoder.clone(),
            noise: self.noise.map(|n| n.to_string()).unwrap_or_default(),
            stop: self.stop.as_str().to_string(),
            engine: self.engine.as_str().to_string(),
            wall_s: self.wall.as_secs_f64(),
            shots_per_sec: self.shots_per_sec(),
        }
    }
}

/// The result of an [`OptimizeJob`].
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The optimizer's full result (records, schedules).
    pub result: OptimizationResult,
    /// Why the loop stopped.
    pub stop: StopReason,
    /// The seed the run was computed with.
    pub seed: u64,
    /// Wall-clock duration of the job.
    pub wall: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_reasons_have_stable_names() {
        assert_eq!(
            StopReason::Converged { iterations: 2 }.as_str(),
            "converged"
        );
        assert_eq!(
            StopReason::IterationLimit { iterations: 4 }.as_str(),
            "iteration_limit"
        );
        assert_eq!(StopReason::ShotsExhausted.as_str(), "shots_exhausted");
        assert_eq!(
            StopReason::from(LerStopReason::MaxFailuresReached).as_str(),
            "max_failures"
        );
        assert_eq!(
            StopReason::from(LerStopReason::TargetRseReached).as_str(),
            "target_rse"
        );
        assert!(StopReason::TargetRseReached.stopped_early());
        assert!(!StopReason::ShotsExhausted.stopped_early());
    }

    #[test]
    fn ler_outcome_records_throughput_and_noise() {
        let outcome = LerOutcome {
            per_basis: vec![],
            combined: LogicalErrorEstimate {
                shots: 1000,
                failures: 10,
            },
            stop: StopReason::MaxFailuresReached,
            seed: 7,
            chunk_size: 64,
            decoder: "unionfind".into(),
            noise: Some(NoiseSpec::uniform(1e-3)),
            p: 1e-3,
            idle: 0.0,
            engine: Engine::Frames,
            wall: Duration::from_millis(500),
        };
        assert!((outcome.shots_per_sec() - 2000.0).abs() < 1e-9);
        let record = outcome.to_record("x");
        let ReportRecord::Ler {
            decoder,
            noise,
            stop,
            engine,
            shots_per_sec,
            ..
        } = record
        else {
            panic!("expected ler record");
        };
        assert_eq!(decoder, "unionfind");
        assert_eq!(noise, "depolarizing:0.001");
        assert_eq!(stop, "max_failures");
        assert_eq!(engine, "frames");
        assert!(shots_per_sec > 0.0);
        // Zero wall-clock must not divide by zero.
        let zero = LerOutcome {
            wall: Duration::ZERO,
            ..outcome
        };
        assert_eq!(zero.shots_per_sec(), 0.0);
    }
}
