//! Criterion benchmarks of the performance-critical kernels of the PropHunt pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use prophunt::ambiguity::{find_ambiguous_subgraph, DecodingGraph};
use prophunt::minweight::min_weight_logical_error;
use prophunt_circuit::schedule::ScheduleSpec;
use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
use prophunt_decoders::{BpOsdDecoder, Decoder, UnionFindDecoder};
use prophunt_qec::surface::rotated_surface_code_with_layout;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_dem_construction(c: &mut Criterion) {
    let (code, layout) = rotated_surface_code_with_layout(5);
    let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
    let exp = MemoryExperiment::build(&code, &schedule, 5, MemoryBasis::Z).unwrap();
    c.bench_function("dem_construction_surface_d5", |b| {
        b.iter(|| {
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3))
        })
    });
}

fn bench_ambiguous_subgraph(c: &mut Criterion) {
    let (code, layout) = rotated_surface_code_with_layout(3);
    let schedule = ScheduleSpec::surface_poor(&code, &layout);
    let graph = DecodingGraph::build(&code, &schedule, 3, MemoryBasis::Z, 1e-3).unwrap();
    c.bench_function("ambiguous_subgraph_finding_d3_poor", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| find_ambiguous_subgraph(&graph, &mut rng, 60))
    });
}

fn bench_subgraph_maxsat(c: &mut Criterion) {
    let (code, layout) = rotated_surface_code_with_layout(3);
    let schedule = ScheduleSpec::surface_poor(&code, &layout);
    let graph = DecodingGraph::build(&code, &schedule, 3, MemoryBasis::Z, 1e-3).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let sub = (0..50)
        .find_map(|_| find_ambiguous_subgraph(&graph, &mut rng, 60))
        .expect("subgraph");
    c.bench_function("subgraph_maxsat_min_weight_d3", |b| {
        b.iter(|| min_weight_logical_error(&sub, Duration::from_secs(30)))
    });
}

fn bench_decoders(c: &mut Criterion) {
    let (code, layout) = rotated_surface_code_with_layout(3);
    let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
    let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
    let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(5e-3));
    let bposd = BpOsdDecoder::new(&dem);
    let uf = UnionFindDecoder::new(&dem);
    let mut sampler = dem.sampler(3);
    let shots: Vec<_> = (0..32).map(|_| sampler.sample().0).collect();
    c.bench_function("decode_bposd_surface_d3_32shots", |b| {
        b.iter(|| shots.iter().map(|s| bposd.decode(s)).collect::<Vec<_>>())
    });
    c.bench_function("decode_unionfind_surface_d3_32shots", |b| {
        b.iter(|| shots.iter().map(|s| uf.decode(s)).collect::<Vec<_>>())
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = bench_dem_construction, bench_ambiguous_subgraph, bench_subgraph_maxsat, bench_decoders
}
criterion_main!(kernels);
