//! D4 negative: seeded RNG streams are the sanctioned source of randomness;
//! mentions of thread_rng in comments/strings must not trigger.
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub fn seeded_coin(seed: u64) -> bool {
    // never use thread_rng() here — splitmix64-derived seeds only
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.gen_bool(0.5)
}

pub fn describe() -> &'static str {
    "thread_rng() and rand::random() are banned outside this string"
}
