//! Belief propagation with ordered-statistics post-processing (BP+OSD).

use crate::{BatchStats, Decoder};
use prophunt_circuit::DetectorErrorModel;
use prophunt_gf2::BitVec;

/// Lane width of the structure-of-arrays block BP core: how many syndromes
/// iterate min-sum together in one set of contiguous message arrays. Wide
/// enough to keep the per-edge lane loops vectorizable, narrow enough that a
/// block's messages stay cache-resident on the large LDPC models.
const BP_BLOCK_LANES: usize = 32;

/// Min-sum belief propagation over a detector error model's Tanner graph, followed by
/// ordered-statistics decoding (OSD-0) when BP alone does not reproduce the syndrome.
///
/// This is the decoder family the paper uses for LP and RQT codes (BP-LSD); it also
/// decodes matchable surface-code graphs, so the benchmark harness can use one decoder
/// implementation everywhere.
#[derive(Debug, Clone)]
pub struct BpOsdDecoder {
    /// error -> detectors
    error_detectors: Vec<Vec<usize>>,
    /// error -> observables
    error_observables: Vec<Vec<usize>>,
    /// prior log-likelihood ratios log((1-p)/p) per error
    priors: Vec<f64>,
    /// detector-signature -> most likely single mechanism with exactly that signature
    signature_lookup: std::collections::HashMap<Vec<usize>, usize>,
    num_detectors: usize,
    num_observables: usize,
    max_iterations: usize,
    scaling: f64,
}

impl BpOsdDecoder {
    /// Builds a decoder for the given detector error model with default parameters
    /// (30 min-sum iterations, normalization factor 0.8).
    pub fn new(dem: &DetectorErrorModel) -> Self {
        Self::with_parameters(dem, 30, 0.8)
    }

    /// Builds a decoder with explicit iteration count and min-sum normalization factor.
    pub fn with_parameters(dem: &DetectorErrorModel, max_iterations: usize, scaling: f64) -> Self {
        let error_detectors: Vec<Vec<usize>> =
            dem.errors().iter().map(|e| e.detectors.clone()).collect();
        let error_observables: Vec<Vec<usize>> =
            dem.errors().iter().map(|e| e.observables.clone()).collect();
        let priors: Vec<f64> = dem
            .errors()
            .iter()
            .map(|e| {
                let p = e.probability.clamp(1e-12, 0.5 - 1e-12);
                ((1.0 - p) / p).ln()
            })
            .collect();
        let mut signature_lookup = std::collections::HashMap::new();
        for (i, err) in dem.errors().iter().enumerate() {
            signature_lookup
                .entry(err.detectors.clone())
                .and_modify(|best: &mut usize| {
                    if dem.error(*best).probability < err.probability {
                        *best = i;
                    }
                })
                .or_insert(i);
        }
        BpOsdDecoder {
            error_detectors,
            error_observables,
            priors,
            signature_lookup,
            num_detectors: dem.num_detectors(),
            num_observables: dem.num_observables(),
            max_iterations,
            scaling,
        }
    }

    /// Runs min-sum BP; returns `(hard decision, posterior LLRs, converged)`.
    fn belief_propagation(&self, syndrome: &BitVec) -> (BitVec, Vec<f64>, bool) {
        let num_errors = self.priors.len();
        // Messages indexed by (error, position in error's detector list).
        let mut var_to_check: Vec<Vec<f64>> = self
            .error_detectors
            .iter()
            .enumerate()
            .map(|(e, dets)| vec![self.priors[e]; dets.len()])
            .collect();
        let mut check_to_var: Vec<Vec<f64>> = self
            .error_detectors
            .iter()
            .map(|dets| vec![0.0; dets.len()])
            .collect();
        // For check-side iteration we need, per detector, the list of (error, slot).
        let mut check_adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.num_detectors];
        for (e, dets) in self.error_detectors.iter().enumerate() {
            for (slot, &d) in dets.iter().enumerate() {
                check_adj[d].push((e, slot));
            }
        }

        let mut llr = vec![0.0f64; num_errors];
        let mut decision = BitVec::zeros(num_errors);
        for _ in 0..self.max_iterations {
            // Check update (min-sum with normalization).
            for (d, adj) in check_adj.iter().enumerate() {
                let target = if syndrome.get(d) { -1.0 } else { 1.0 };
                // Product of signs and two smallest magnitudes of incoming messages.
                let mut sign_product = target;
                let mut min1 = f64::INFINITY;
                let mut min2 = f64::INFINITY;
                let mut min_idx = usize::MAX;
                for (k, &(e, slot)) in adj.iter().enumerate() {
                    let m = var_to_check[e][slot];
                    if m < 0.0 {
                        sign_product = -sign_product;
                    }
                    let mag = m.abs();
                    if mag < min1 {
                        min2 = min1;
                        min1 = mag;
                        min_idx = k;
                    } else if mag < min2 {
                        min2 = mag;
                    }
                }
                for (k, &(e, slot)) in adj.iter().enumerate() {
                    let m = var_to_check[e][slot];
                    let sign = sign_product * if m < 0.0 { -1.0 } else { 1.0 };
                    let mag = if k == min_idx { min2 } else { min1 };
                    let mag = if mag.is_finite() { mag } else { 0.0 };
                    check_to_var[e][slot] = self.scaling * sign * mag;
                }
            }
            // Variable update and hard decision.
            for e in 0..num_errors {
                let total: f64 = self.priors[e] + check_to_var[e].iter().sum::<f64>();
                llr[e] = total;
                decision.set(e, total < 0.0);
                for (slot, _) in self.error_detectors[e].iter().enumerate() {
                    var_to_check[e][slot] = total - check_to_var[e][slot];
                }
            }
            if self.syndrome_of(&decision) == *syndrome {
                return (decision, llr, true);
            }
        }
        (decision, llr, false)
    }

    fn syndrome_of(&self, errors: &BitVec) -> BitVec {
        let mut s = BitVec::zeros(self.num_detectors);
        self.syndrome_of_into(errors, &mut s);
        s
    }

    fn syndrome_of_into(&self, errors: &BitVec, out: &mut BitVec) {
        out.clear();
        for e in errors.ones() {
            for &d in &self.error_detectors[e] {
                out.flip(d);
            }
        }
    }

    /// OSD-0: order columns by BP reliability (most likely error first), Gaussian
    /// eliminate to find a pivot basis, and solve for an error supported on the pivots.
    fn osd_zero(&self, syndrome: &BitVec, llr: &[f64]) -> BitVec {
        let num_errors = self.priors.len();
        let mut order: Vec<usize> = (0..num_errors).collect();
        order.sort_by(|&a, &b| {
            llr[a]
                .partial_cmp(&llr[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Gaussian elimination over the column-permuted check matrix, carrying the
        // syndrome as an augmented column. Rows are detectors.
        // We store each row sparsely as a BitVec over the *ordered* columns, built lazily
        // column by column to avoid materialising the full matrix: standard elimination
        // on columns, keeping track of pivot rows.
        let mut pivot_row_of_col: Vec<Option<usize>> = Vec::with_capacity(self.num_detectors);
        let mut row_used = vec![false; self.num_detectors];
        // Row representation: for elimination we need full row operations; operate on the
        // transposed problem instead. Build matrix rows = detectors over ordered columns.
        let mut rows: Vec<BitVec> = vec![BitVec::zeros(num_errors); self.num_detectors];
        for (new_col, &e) in order.iter().enumerate() {
            for &d in &self.error_detectors[e] {
                rows[d].set(new_col, true);
            }
        }
        let mut rhs = syndrome.clone();
        let mut pivot_cols: Vec<(usize, usize)> = Vec::new(); // (column, pivot row)
        for col in 0..num_errors {
            if pivot_cols.len() == self.num_detectors {
                break;
            }
            // Find an unused row with a one in this column.
            let Some(pr) = (0..self.num_detectors).find(|&r| !row_used[r] && rows[r].get(col))
            else {
                pivot_row_of_col.push(None);
                continue;
            };
            row_used[pr] = true;
            pivot_cols.push((col, pr));
            pivot_row_of_col.push(Some(pr));
            let pivot = rows[pr].clone();
            let pivot_rhs = rhs.get(pr);
            for r in 0..self.num_detectors {
                if r != pr && rows[r].get(col) {
                    rows[r].xor_assign_with(&pivot);
                    if pivot_rhs {
                        rhs.flip(r);
                    }
                }
            }
        }
        // Solution: pivot column value = reduced rhs of its pivot row; others zero.
        let mut solution = BitVec::zeros(num_errors);
        for &(col, pr) in &pivot_cols {
            if rhs.get(pr) {
                solution.set(order[col], true);
            }
        }
        solution
    }

    /// Total prior weight of an error set (sum of `log((1-p)/p)`); lower is more likely.
    fn weight_of(&self, errors: &BitVec) -> f64 {
        errors.ones().map(|e| self.priors[e]).sum()
    }

    /// Predicts the physical error pattern (over error-mechanism indices) for a syndrome.
    ///
    /// Several candidate explanations are produced — the single mechanism with exactly
    /// this detector signature (if one exists), the BP hard decision when it reproduces
    /// the syndrome, and the OSD-0 solution — and the most likely (lowest prior weight)
    /// syndrome-consistent candidate is returned.
    pub fn decode_to_errors(&self, detectors: &BitVec) -> BitVec {
        if detectors.is_zero() {
            return BitVec::zeros(self.priors.len());
        }
        let mut candidates: Vec<BitVec> = Vec::with_capacity(3);
        let signature: Vec<usize> = detectors.ones().collect();
        if let Some(&single) = self.signature_lookup.get(&signature) {
            candidates.push(BitVec::from_indices(self.priors.len(), &[single]));
        }
        let (decision, llr, converged) = self.belief_propagation(detectors);
        if converged {
            candidates.push(decision);
        } else {
            candidates.push(self.osd_zero(detectors, &llr));
        }
        candidates
            .into_iter()
            .filter(|c| &self.syndrome_of(c) == detectors)
            .min_by(|a, b| {
                self.weight_of(a)
                    .partial_cmp(&self.weight_of(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or_else(|| BitVec::zeros(self.priors.len()))
    }

    fn observables_of(&self, errors: &BitVec) -> BitVec {
        let mut obs = BitVec::zeros(self.num_observables);
        for e in errors.ones() {
            for &o in &self.error_observables[e] {
                obs.flip(o);
            }
        }
        obs
    }

    /// Candidate selection for one non-zero syndrome given its block BP
    /// outcome: exactly the candidate set and weight tie-breaking of
    /// [`BpOsdDecoder::decode_to_errors`], with OSD-0 running over reusable
    /// scratch for the non-converged residue.
    fn decode_to_errors_from_bp(
        &self,
        detectors: &BitVec,
        outcome: LaneBp,
        s: &mut BpScratch,
    ) -> BitVec {
        let mut candidates: Vec<BitVec> = Vec::with_capacity(2);
        let signature: Vec<usize> = detectors.ones().collect();
        if let Some(&single) = self.signature_lookup.get(&signature) {
            candidates.push(BitVec::from_indices(self.priors.len(), &[single]));
        }
        match outcome {
            LaneBp::Converged(decision) => candidates.push(decision),
            LaneBp::Stuck(llr) => {
                s.llr.copy_from_slice(&llr);
                candidates.push(self.osd_zero_with_scratch(detectors, s));
            }
        }
        candidates
            .into_iter()
            .filter(|c| &self.syndrome_of(c) == detectors)
            .min_by(|a, b| {
                self.weight_of(a)
                    .partial_cmp(&self.weight_of(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or_else(|| BitVec::zeros(self.priors.len()))
    }

    /// Structure-of-arrays lane-parallel min-sum BP over a block of up to 64
    /// syndromes at once.
    ///
    /// The core is *message-free*: neither direction's messages are stored as
    /// f64 arrays. A check→variable message is always `scaling * sign * mag`
    /// with `sign`/`mag` drawn from its detector's per-iteration statistics
    /// (sign product, two smallest magnitudes, slot of the first minimum),
    /// and a variable→check message is always `posterior - that message`, so
    /// both passes reconstruct the exact f64 each scalar pass would have
    /// loaded — same expression trees, same operand order — from the
    /// posterior LLR array, the previous iteration's detector statistics, and
    /// one stored message *sign bit* per slot (a u64 lane bitmask). That
    /// shrinks the per-iteration streamed state from two O(slots × lanes)
    /// f64 arrays to an O(errors × lanes) f64 array plus one u64 per slot.
    ///
    /// Sign handling is exact: applying a stored sign bit is a conditional
    /// negation (select between `x` and `-x`), which commutes bit-for-bit
    /// with the scalar path's `if m < 0.0 { sign = -sign }` bookkeeping.
    /// The lane-inner loops are branch-free select chains over exact-length
    /// subslices (conditional moves, no data-dependent branches).
    ///
    /// Per lane, the floating-point operation sequence is *exactly* the one
    /// [`BpOsdDecoder::belief_propagation`] applies to that syndrome alone —
    /// checks in detector order, slots in detector-list order, the same
    /// select chains for the sign/min tracking — so each lane's hard decision
    /// and posterior LLRs are bit-identical to the per-shot path.
    ///
    /// Convergence is tracked word-parallel: per-error hard decisions become
    /// 64-lane bitmasks, the decision syndrome is accumulated by XOR per
    /// detector, and lanes whose decision syndrome matches their input
    /// syndrome are retired — their outcome snapshotted at the convergence
    /// iteration (matching the scalar early return) and the surviving lanes
    /// compacted so retired lanes cost nothing. Lanes still active after
    /// `max_iterations` come back as [`LaneBp::Stuck`] with their final LLRs
    /// for the OSD fallback.
    fn belief_propagation_block(
        &self,
        syndromes: &[&BitVec],
        graph: &BpScratch,
        s: &mut BpBlockScratch,
    ) -> Vec<Option<LaneBp>> {
        let num_errors = self.priors.len();
        let num_slots = *graph
            .slot_base
            .last()
            .expect("slot_base has num_errors + 1 entries");
        let mut l = syndromes.len();
        assert!(l <= 64, "at most 64 lanes per BP block, got {l}");
        let mut outcomes: Vec<Option<LaneBp>> = (0..l).map(|_| None).collect();
        if l == 0 {
            return outcomes;
        }
        s.lane_shot.clear();
        s.lane_shot.extend(0..l);
        // Initial state encodes "previous message = prior": the posterior
        // starts at the prior, and the statistics reconstruct a zero
        // check→variable message (positive sign, zero minima), so the first
        // check pass reads `prior - scaling * 1.0 * 0.0 = prior` — exactly
        // the scalar initialisation.
        s.msg_sign.clear();
        s.msg_sign.resize(num_slots, 0);
        s.llr.clear();
        s.llr.resize(num_errors * l, 0.0);
        for e in 0..num_errors {
            s.llr[e * l..e * l + l].fill(self.priors[e]);
        }
        s.dec_mask.clear();
        s.dec_mask.resize(num_errors, 0);
        s.syn_mask.clear();
        s.syn_mask.resize(self.num_detectors, 0);
        for (lane, syn) in syndromes.iter().enumerate() {
            for d in syn.ones() {
                s.syn_mask[d] |= 1u64 << lane;
            }
        }
        s.acc.clear();
        s.acc.resize(self.num_detectors, 0);
        s.sign.clear();
        s.sign.resize(self.num_detectors * l, 1.0);
        s.min1.clear();
        s.min1.resize(self.num_detectors * l, 0.0);
        s.min2.clear();
        s.min2.resize(self.num_detectors * l, 0.0);
        s.min_flat.clear();
        s.min_flat.resize(self.num_detectors * l, usize::MAX);
        s.tot.resize(l, 0.0);
        for _ in 0..self.max_iterations {
            // Check pass: reconstruct each incoming variable→check message as
            // `posterior - previous check→variable message` (the previous
            // message rebuilt from last iteration's statistics for this
            // detector plus the stored sign bit — the exact f64 the scalar
            // path stored), record the new sign bits, and fold the min-sum
            // statistics (sign product, two smallest magnitudes, flat slot of
            // the first minimum). Last iteration's statistics for this
            // detector are copied to the stack first so the main arrays can
            // become this iteration's accumulators in place. Lanes are
            // innermost over exact-length subslices so the compiler can drop
            // the bounds checks and vectorize.
            for (d, adj) in graph.check_adj.iter().enumerate() {
                let syn = s.syn_mask[d];
                let base = d * l;
                let mut psign = [0.0f64; 64];
                let mut pmin1 = [0.0f64; 64];
                let mut pmin2 = [0.0f64; 64];
                let mut pflat = [0usize; 64];
                psign[..l].copy_from_slice(&s.sign[base..base + l]);
                pmin1[..l].copy_from_slice(&s.min1[base..base + l]);
                pmin2[..l].copy_from_slice(&s.min2[base..base + l]);
                pflat[..l].copy_from_slice(&s.min_flat[base..base + l]);
                let psign = &psign[..l];
                let pmin1 = &pmin1[..l];
                let pmin2 = &pmin2[..l];
                let pflat = &pflat[..l];
                let sign = &mut s.sign[base..base + l];
                let min1 = &mut s.min1[base..base + l];
                let min2 = &mut s.min2[base..base + l];
                let min_flat = &mut s.min_flat[base..base + l];
                for (lane, sg) in sign.iter_mut().enumerate() {
                    *sg = if (syn >> lane) & 1 == 1 { -1.0 } else { 1.0 };
                }
                min1.fill(f64::INFINITY);
                min2.fill(f64::INFINITY);
                min_flat.fill(usize::MAX);
                for &(e, flat) in adj.iter() {
                    let llr = &s.llr[e * l..e * l + l];
                    let prev_neg = s.msg_sign[flat];
                    let mut neg = 0u64;
                    for lane in 0..l {
                        let psg = if (prev_neg >> lane) & 1 == 1 {
                            -psign[lane]
                        } else {
                            psign[lane]
                        };
                        let pmag = if flat == pflat[lane] {
                            pmin2[lane]
                        } else {
                            pmin1[lane]
                        };
                        let pmag = if pmag < f64::INFINITY { pmag } else { 0.0 };
                        let m = llr[lane] - self.scaling * psg * pmag;
                        let is_neg = m < 0.0;
                        neg |= u64::from(is_neg) << lane;
                        sign[lane] = if is_neg { -sign[lane] } else { sign[lane] };
                        let mag = m.abs();
                        let lt1 = mag < min1[lane];
                        let lt2 = mag < min2[lane];
                        min2[lane] = if lt1 {
                            min1[lane]
                        } else if lt2 {
                            mag
                        } else {
                            min2[lane]
                        };
                        min1[lane] = if lt1 { mag } else { min1[lane] };
                        min_flat[lane] = if lt1 { flat } else { min_flat[lane] };
                    }
                    s.msg_sign[flat] = neg;
                }
            }
            // Variable pass: rebuild each incoming check→variable message from
            // the detector statistics and this iteration's sign bits
            // (bit-identical to the scalar two-pass formulation: same
            // expression tree, same slot order), accumulate the posterior, and
            // emit hard decisions as lane bitmasks.
            for e in 0..num_errors {
                let slots = graph.slot_base[e]..graph.slot_base[e + 1];
                let tot = &mut s.tot[..l];
                tot.fill(0.0);
                for k in slots.clone() {
                    let d = graph.slot_detector[k];
                    let base = d * l;
                    let sign = &s.sign[base..base + l];
                    let min1 = &s.min1[base..base + l];
                    let min2 = &s.min2[base..base + l];
                    let min_flat = &s.min_flat[base..base + l];
                    let neg = s.msg_sign[k];
                    for lane in 0..l {
                        let sg = if (neg >> lane) & 1 == 1 {
                            -sign[lane]
                        } else {
                            sign[lane]
                        };
                        let mag = if k == min_flat[lane] {
                            min2[lane]
                        } else {
                            min1[lane]
                        };
                        let mag = if mag < f64::INFINITY { mag } else { 0.0 };
                        tot[lane] += self.scaling * sg * mag;
                    }
                }
                let prior = self.priors[e];
                let llr = &mut s.llr[e * l..e * l + l];
                let mut mask = 0u64;
                for lane in 0..l {
                    let total = prior + tot[lane];
                    llr[lane] = total;
                    mask |= u64::from(total < 0.0) << lane;
                }
                s.dec_mask[e] = mask;
            }
            // Convergence: the decision syndrome for every lane at once, by
            // XOR-accumulating decision masks per detector incidence.
            for (d, adj) in graph.check_adj.iter().enumerate() {
                let mut a = 0u64;
                for &(e, _) in adj.iter() {
                    a ^= s.dec_mask[e];
                }
                s.acc[d] = a;
            }
            let mut mismatch = 0u64;
            for (d, &a) in s.acc.iter().enumerate() {
                mismatch |= a ^ s.syn_mask[d];
            }
            let full = if l == 64 { u64::MAX } else { (1u64 << l) - 1 };
            let newly = full & !mismatch;
            if newly == 0 {
                continue;
            }
            // Snapshot converged lanes at this iteration (the scalar path
            // returns immediately on convergence, so later iterations must
            // not touch them) ...
            for lane in 0..l {
                if (newly >> lane) & 1 == 1 {
                    let mut decision = BitVec::zeros(num_errors);
                    for e in 0..num_errors {
                        if (s.dec_mask[e] >> lane) & 1 == 1 {
                            decision.set(e, true);
                        }
                    }
                    outcomes[s.lane_shot[lane]] = Some(LaneBp::Converged(decision));
                }
            }
            // ... and compact the survivors to the front so retired lanes
            // cost nothing. In-place front-to-back is safe: every write index
            // is <= the index it reads from (kept lanes only move left).
            // Everything the next check pass reconstructs messages from moves
            // with the lane: posteriors, sign bits, and this iteration's
            // detector statistics.
            let keep: Vec<usize> = (0..l).filter(|&lane| (newly >> lane) & 1 == 0).collect();
            let nl = keep.len();
            if nl == 0 {
                l = 0;
                break;
            }
            for e in 0..num_errors {
                for (ni, &ol) in keep.iter().enumerate() {
                    s.llr[e * nl + ni] = s.llr[e * l + ol];
                }
            }
            for d in 0..self.num_detectors {
                for (ni, &ol) in keep.iter().enumerate() {
                    s.sign[d * nl + ni] = s.sign[d * l + ol];
                    s.min1[d * nl + ni] = s.min1[d * l + ol];
                    s.min2[d * nl + ni] = s.min2[d * l + ol];
                    s.min_flat[d * nl + ni] = s.min_flat[d * l + ol];
                }
            }
            for m in s.msg_sign.iter_mut() {
                let mut out = 0u64;
                for (ni, &ol) in keep.iter().enumerate() {
                    out |= ((*m >> ol) & 1) << ni;
                }
                *m = out;
            }
            for m in s.syn_mask.iter_mut() {
                let mut out = 0u64;
                for (ni, &ol) in keep.iter().enumerate() {
                    out |= ((*m >> ol) & 1) << ni;
                }
                *m = out;
            }
            for (ni, &ol) in keep.iter().enumerate() {
                s.lane_shot[ni] = s.lane_shot[ol];
            }
            s.lane_shot.truncate(nl);
            l = nl;
        }
        // Whatever is still active after max_iterations is stuck: hand the
        // final LLRs to the OSD fallback.
        for lane in 0..l {
            let llr: Vec<f64> = (0..num_errors).map(|e| s.llr[e * l + lane]).collect();
            outcomes[s.lane_shot[lane]] = Some(LaneBp::Stuck(llr));
        }
        outcomes
    }

    /// OSD-0 over reusable scratch: the same column ordering (stable sort on
    /// the scratch LLRs), elimination order and pivot choices as
    /// [`BpOsdDecoder::osd_zero`], reformulated through the eliminator matrix.
    ///
    /// Instead of materialising the detector × error matrix over ordered
    /// columns and doing row operations across its full width, this tracks
    /// only `E`, the product of the row operations applied so far (detector ×
    /// detector, stored column-major; starts as the identity). The reduced
    /// state of any original column is then `E · A[:, e]` — the XOR of `E`'s
    /// columns at the error's detectors — so each candidate column is reduced
    /// on demand in detector-width words, and the reduced rhs `E · syndrome`
    /// falls out the same way after elimination finishes. Pivot selection
    /// (first unused detector row with a one, columns in reliability order)
    /// and the row operations are exactly the scalar path's, so the solution
    /// is bit-identical; only the arithmetic width shrinks from `num_errors`
    /// bits per row op to `num_detectors`.
    fn osd_zero_with_scratch(&self, syndrome: &BitVec, s: &mut BpScratch) -> BitVec {
        let num_errors = self.priors.len();
        let BpScratch {
            llr,
            order,
            elim,
            reduced,
            r_mask,
            row_used,
            pivot_cols,
            ..
        } = s;
        order.clear();
        order.extend(0..num_errors);
        order.sort_by(|&a, &b| {
            llr[a]
                .partial_cmp(&llr[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for (d, col) in elim.iter_mut().enumerate() {
            col.clear();
            col.set(d, true);
        }
        row_used.fill(false);
        pivot_cols.clear();
        for &e in order.iter() {
            if pivot_cols.len() == self.num_detectors {
                break;
            }
            reduced.clear();
            for &d in &self.error_detectors[e] {
                reduced.xor_assign_with(&elim[d]);
            }
            // First unused row with a one in this column (ones() ascends, so
            // this is the scalar path's 0..num_detectors scan).
            let Some(pr) = reduced.ones().find(|&r| !row_used[r]) else {
                continue;
            };
            row_used[pr] = true;
            pivot_cols.push((e, pr));
            // Row op: every other row with a one in this column absorbs the
            // pivot row. On E that flips exactly those rows in each column
            // whose pivot-row bit is set.
            r_mask.clone_from(reduced);
            r_mask.set(pr, false);
            if !r_mask.is_zero() {
                for col in elim.iter_mut() {
                    if col.get(pr) {
                        col.xor_assign_with(r_mask);
                    }
                }
            }
        }
        reduced.clear();
        for d in syndrome.ones() {
            reduced.xor_assign_with(&elim[d]);
        }
        let mut solution = BitVec::zeros(num_errors);
        for &(e, pr) in pivot_cols.iter() {
            if reduced.get(pr) {
                solution.set(e, true);
            }
        }
        solution
    }
}

/// The block BP core's verdict for one lane (one non-zero syndrome).
enum LaneBp {
    /// BP converged; the hard decision at the convergence iteration.
    Converged(BitVec),
    /// BP did not converge; the posterior LLRs after the final iteration,
    /// ready for the OSD-0 fallback.
    Stuck(Vec<f64>),
}

/// Reusable per-batch working memory for [`BpOsdDecoder`]: the Tanner-graph
/// layout (flattened message-slot spans and the per-detector check adjacency,
/// built once per batch instead of once per shot) and the OSD-0 elimination
/// matrix for the non-converged residue.
struct BpScratch {
    /// `slot_base[e]..slot_base[e + 1]` spans error `e`'s message slots.
    slot_base: Vec<usize>,
    /// Per detector: `(error, flattened slot index)`, in the same order the
    /// per-shot path builds its adjacency (errors ascending).
    check_adj: Vec<Vec<(usize, usize)>>,
    /// Flat slot index -> the detector that slot's message talks to.
    slot_detector: Vec<usize>,
    /// OSD input: the posterior LLRs of the lane being post-processed.
    llr: Vec<f64>,
    order: Vec<usize>,
    /// The OSD eliminator `E` (accumulated row operations), column-major:
    /// `elim[d]` is column `d`, `num_detectors` bits. Reset to identity per call.
    elim: Vec<BitVec>,
    /// One reduced column / the reduced rhs, `num_detectors` bits.
    reduced: BitVec,
    /// The pivot row-op mask (reduced column minus the pivot row).
    r_mask: BitVec,
    row_used: Vec<bool>,
    /// `(original error column, pivot detector row)` per pivot, in order.
    pivot_cols: Vec<(usize, usize)>,
}

impl BpScratch {
    fn new(decoder: &BpOsdDecoder) -> Self {
        let num_errors = decoder.priors.len();
        let mut slot_base = Vec::with_capacity(num_errors + 1);
        let mut total = 0usize;
        for dets in &decoder.error_detectors {
            slot_base.push(total);
            total += dets.len();
        }
        slot_base.push(total);
        let mut check_adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); decoder.num_detectors];
        let mut slot_detector = vec![0usize; total];
        for (e, dets) in decoder.error_detectors.iter().enumerate() {
            for (slot, &d) in dets.iter().enumerate() {
                check_adj[d].push((e, slot_base[e] + slot));
                slot_detector[slot_base[e] + slot] = d;
            }
        }
        BpScratch {
            slot_base,
            check_adj,
            slot_detector,
            llr: vec![0.0; num_errors],
            order: Vec::with_capacity(num_errors),
            elim: vec![BitVec::zeros(decoder.num_detectors); decoder.num_detectors],
            reduced: BitVec::zeros(decoder.num_detectors),
            r_mask: BitVec::zeros(decoder.num_detectors),
            row_used: vec![false; decoder.num_detectors],
            pivot_cols: Vec::new(),
        }
    }
}

/// Reusable working memory for [`BpOsdDecoder::belief_propagation_block`]:
/// the posterior array and per-slot message sign bits both passes reconstruct
/// messages from, the per-detector syndrome and per-error decision lane
/// masks, and the per-detector min-sum statistics. Buffers are resized per
/// block and compacted in place as lanes retire.
#[derive(Default)]
struct BpBlockScratch {
    /// Posterior LLRs, `[e * lanes + lane]`.
    llr: Vec<f64>,
    /// Per flat slot: the sign bits of the latest reconstructed
    /// variable→check messages through that slot, one bit per lane
    /// (set = negative).
    msg_sign: Vec<u64>,
    /// Per detector: which lanes' syndromes set this detector.
    syn_mask: Vec<u64>,
    /// Per error: which lanes' hard decisions include this error.
    dec_mask: Vec<u64>,
    /// Per detector: XOR-accumulated decision syndrome, one bit per lane.
    acc: Vec<u64>,
    /// Check statistics, `[d * lanes + lane]`: this iteration's accumulators
    /// during the check pass, then read back by the variable pass and the
    /// next check pass's message reconstruction.
    sign: Vec<f64>,
    min1: Vec<f64>,
    min2: Vec<f64>,
    /// Flat slot index of each detector's first-minimum message
    /// (`usize::MAX` marks "none yet").
    min_flat: Vec<usize>,
    tot: Vec<f64>,
    /// Current lane index -> position in the caller's block.
    lane_shot: Vec<usize>,
}

impl Decoder for BpOsdDecoder {
    fn decode(&self, detectors: &BitVec) -> BitVec {
        let errors = self.decode_to_errors(detectors);
        self.observables_of(&errors)
    }

    /// Batch path of the frame engine; see [`Decoder::decode_batch_with_stats`].
    fn decode_batch(&self, shots: &[BitVec]) -> Vec<BitVec> {
        self.decode_batch_with_stats(shots).0
    }

    /// Batch path of the frame engine: shots run through the
    /// structure-of-arrays lane-parallel BP core in blocks of
    /// `BP_BLOCK_LANES` (32), with the Tanner-graph layout and the OSD
    /// elimination matrix built once and reused across the whole batch.
    /// All-zero syndromes short-circuit exactly like the per-shot path.
    /// Per-shot results are pinned equal to [`Decoder::decode`] by the
    /// equality tests in this crate and the `frame_engine` suite tests.
    fn decode_batch_with_stats(&self, shots: &[BitVec]) -> (Vec<BitVec>, BatchStats) {
        let mut scratch = BpScratch::new(self);
        let mut block_scratch = BpBlockScratch::default();
        let mut stats = BatchStats::default();
        let mut out: Vec<BitVec> = Vec::with_capacity(shots.len());
        for block in shots.chunks(BP_BLOCK_LANES) {
            let live: Vec<&BitVec> = block.iter().filter(|shot| !shot.is_zero()).collect();
            let mut outcomes = self.belief_propagation_block(&live, &scratch, &mut block_scratch);
            let mut next_live = 0usize;
            for shot in block {
                if shot.is_zero() {
                    out.push(BitVec::zeros(self.num_observables));
                    continue;
                }
                let outcome = outcomes[next_live]
                    .take()
                    .expect("block BP produces one outcome per live lane");
                next_live += 1;
                match &outcome {
                    LaneBp::Converged(_) => stats.bp_converged += 1,
                    LaneBp::Stuck(_) => stats.osd_calls += 1,
                }
                let errors = self.decode_to_errors_from_bp(shot, outcome, &mut scratch);
                out.push(self.observables_of(&errors));
            }
        }
        (out, stats)
    }

    fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    fn num_observables(&self) -> usize {
        self.num_observables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_circuit::schedule::ScheduleSpec;
    use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
    use prophunt_qec::small::quantum_repetition_code;
    use prophunt_qec::surface::rotated_surface_code_with_layout;

    fn surface_dem(d: usize, p: f64) -> DetectorErrorModel {
        let (code, layout) = rotated_surface_code_with_layout(d);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, d, MemoryBasis::Z).unwrap();
        DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p))
    }

    #[test]
    fn zero_syndrome_decodes_to_zero() {
        let dem = surface_dem(3, 1e-3);
        let decoder = BpOsdDecoder::new(&dem);
        let zero = BitVec::zeros(dem.num_detectors());
        assert!(decoder.decode(&zero).is_zero());
    }

    #[test]
    fn single_error_syndromes_are_corrected() {
        // Feeding a single mechanism's syndrome to the decoder should almost always
        // reproduce its observable effect. Mechanisms whose syndrome has an alternative
        // multi-error explanation of comparable likelihood are allowed to disagree (that
        // near-degeneracy is exactly what sets the logical error floor), so the test
        // tolerates a small fraction of mismatches overall but none for single-detector
        // (boundary-like) mechanisms.
        let dem = surface_dem(3, 1e-3);
        let decoder = BpOsdDecoder::new(&dem);
        let mut failures = 0;
        let mut boundary_failures = 0;
        for err in dem.errors() {
            let mut syndrome = BitVec::zeros(dem.num_detectors());
            for &d in &err.detectors {
                syndrome.set(d, true);
            }
            let mut expected = BitVec::zeros(dem.num_observables());
            for &o in &err.observables {
                expected.set(o, true);
            }
            if decoder.decode(&syndrome) != expected {
                failures += 1;
                if err.detectors.len() <= 1 {
                    boundary_failures += 1;
                }
            }
        }
        assert_eq!(
            boundary_failures, 0,
            "single-detector syndromes must never misdecode"
        );
        let limit = dem.num_errors() / 20;
        assert!(
            failures <= limit,
            "too many single-fault misdecodes: {failures}/{}",
            dem.num_errors()
        );
    }

    #[test]
    fn decoded_errors_reproduce_the_syndrome() {
        let dem = surface_dem(3, 2e-3);
        let decoder = BpOsdDecoder::new(&dem);
        let mut sampler = dem.sampler(11);
        for _ in 0..50 {
            let (dets, _) = sampler.sample();
            let errors = decoder.decode_to_errors(&dets);
            assert_eq!(
                decoder.syndrome_of(&errors),
                dets,
                "correction must explain the syndrome"
            );
        }
    }

    #[test]
    fn decode_batch_equals_per_shot_decode_including_osd_shots() {
        // High enough noise that some shots fail BP convergence and fall
        // through to OSD-0, exercising the reused elimination matrix.
        let dem = surface_dem(3, 3e-2);
        let decoder = BpOsdDecoder::new(&dem);
        let mut sampler = dem.sampler(29);
        let shots: Vec<BitVec> = (0..60).map(|_| sampler.sample().0).collect();
        let batch = decoder.decode_batch(&shots);
        assert_eq!(batch.len(), shots.len());
        for (i, (shot, prediction)) in shots.iter().zip(&batch).enumerate() {
            assert_eq!(&decoder.decode(shot), prediction, "shot {i}");
        }
    }

    #[test]
    fn batch_stats_count_every_nonzero_shot_once() {
        // High enough noise that lanes converge at different iterations and
        // some fall through to OSD, exercising block compaction end to end.
        let dem = surface_dem(3, 3e-2);
        let decoder = BpOsdDecoder::new(&dem);
        let mut sampler = dem.sampler(31);
        let shots: Vec<BitVec> = (0..100).map(|_| sampler.sample().0).collect();
        let nonzero = shots.iter().filter(|s| !s.is_zero()).count();
        assert!(nonzero > 0);
        let (predictions, stats) = decoder.decode_batch_with_stats(&shots);
        assert_eq!(predictions, decoder.decode_batch(&shots));
        assert_eq!(stats.bp_converged + stats.osd_calls, nonzero);
        assert!(stats.bp_converged > 0, "some shots should converge in BP");
        for (i, (shot, prediction)) in shots.iter().zip(&predictions).enumerate() {
            assert_eq!(&decoder.decode(shot), prediction, "shot {i}");
        }
    }

    #[test]
    fn repetition_code_sampled_shots_decode_mostly_correctly() {
        let code = quantum_repetition_code(5);
        let schedule = ScheduleSpec::coloration(&code);
        let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(5e-3));
        let decoder = BpOsdDecoder::new(&dem);
        let mut sampler = dem.sampler(3);
        let mut failures = 0;
        let shots = 300;
        for _ in 0..shots {
            let (dets, obs) = sampler.sample();
            if decoder.decode(&dets) != obs {
                failures += 1;
            }
        }
        // At p = 0.5% a distance-5 repetition code should essentially never fail in 300 shots.
        assert!(failures <= 3, "too many failures: {failures}/{shots}");
    }
}
