//! CSS quantum error-correcting codes for the PropHunt suite.
//!
//! This crate provides the *code-level* objects the paper's tool consumes: CSS stabilizer
//! codes described by a pair of parity-check matrices `H_X`, `H_Z` together with logical
//! observable matrices `L_X`, `L_Z`, plus the concrete code families used in the
//! evaluation:
//!
//! * rotated **surface codes** ([`surface::rotated_surface_code`]),
//! * small codes used in the paper's discussion (**Steane**, quantum **repetition**),
//! * **hypergraph-product** codes,
//! * **generalized-bicycle** / **bivariate-bicycle** / cyclic **lifted-product** codes,
//!   which stand in for the paper's LP and Random Quantum Tanner instances (see
//!   `README.md` for the substitution rationale).
//!
//! The central type is [`CssCode`]; construction validates stabilizer commutation and
//! derives a symplectically paired basis of logical operators. Code distance can be
//! estimated with [`distance::estimate_distance`].
//!
//! # Example
//!
//! ```
//! use prophunt_qec::surface::rotated_surface_code;
//!
//! let code = rotated_surface_code(3);
//! assert_eq!((code.n(), code.k()), (9, 1));
//! assert_eq!(code.num_x_stabilizers(), 4);
//! assert_eq!(code.num_z_stabilizers(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classical;
pub mod css;
pub mod distance;
pub mod product;
pub mod small;
pub mod surface;

pub use classical::ClassicalCode;
pub use css::{CssCode, CssCodeError, StabilizerKind};
