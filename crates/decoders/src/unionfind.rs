//! A union-find (cluster growth + peeling) decoder for graph-like detector error models.

use crate::Decoder;
use prophunt_circuit::DetectorErrorModel;
use prophunt_gf2::BitVec;

/// An edge of the matchable decoding graph.
#[derive(Debug, Clone)]
struct Edge {
    /// First endpoint (detector index).
    a: usize,
    /// Second endpoint (detector index, or `boundary` for weight-1 mechanisms).
    b: usize,
    /// Observable indices flipped by this edge.
    observables: Vec<usize>,
}

/// A union-find decoder in the style of Delfosse–Nickerson: grow clusters around flipped
/// detectors until every cluster is neutral (even parity or touching the boundary), then
/// peel a spanning forest of each cluster to extract a correction.
///
/// Only error mechanisms flipping one or two detectors become graph edges; mechanisms
/// with a larger detector footprint (a small minority under circuit-level depolarizing
/// noise) are ignored when building the graph, which makes this decoder slightly less
/// accurate than [`crate::BpOsdDecoder`] but considerably faster on surface codes.
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    edges: Vec<Edge>,
    /// detector -> incident edge indices (boundary node excluded).
    incident: Vec<Vec<usize>>,
    num_detectors: usize,
    num_observables: usize,
    boundary: usize,
}

impl UnionFindDecoder {
    /// Builds the decoder from a detector error model, keeping only graph-like error
    /// mechanisms (one or two flipped detectors).
    pub fn new(dem: &DetectorErrorModel) -> Self {
        let num_detectors = dem.num_detectors();
        let boundary = num_detectors;
        let mut edges = Vec::new();
        let mut incident = vec![Vec::new(); num_detectors];
        for err in dem.errors() {
            let edge = match err.detectors.len() {
                1 => Edge {
                    a: err.detectors[0],
                    b: boundary,
                    observables: err.observables.clone(),
                },
                2 => Edge {
                    a: err.detectors[0],
                    b: err.detectors[1],
                    observables: err.observables.clone(),
                },
                _ => continue,
            };
            let idx = edges.len();
            incident[edge.a].push(idx);
            if edge.b != boundary {
                incident[edge.b].push(idx);
            }
            edges.push(edge);
        }
        UnionFindDecoder {
            edges,
            incident,
            num_detectors,
            num_observables: dem.num_observables(),
            boundary,
        }
    }

    /// Returns the number of graph edges retained from the model.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// Plain union-find over cluster roots with parity and boundary bookkeeping.
struct Clusters {
    parent: Vec<usize>,
    parity: Vec<bool>,
    touches_boundary: Vec<bool>,
}

impl Clusters {
    fn new(num_nodes: usize, syndrome: &BitVec) -> Self {
        Clusters {
            parent: (0..num_nodes).collect(),
            parity: (0..num_nodes)
                .map(|i| i < syndrome.len() && syndrome.get(i))
                .collect(),
            touches_boundary: (0..num_nodes).map(|i| i == num_nodes - 1).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        self.parent[rb] = ra;
        self.parity[ra] ^= self.parity[rb];
        self.touches_boundary[ra] |= self.touches_boundary[rb];
        ra
    }

    fn is_neutral(&mut self, x: usize) -> bool {
        let r = self.find(x);
        !self.parity[r] || self.touches_boundary[r]
    }
}

impl Decoder for UnionFindDecoder {
    fn decode(&self, detectors: &BitVec) -> BitVec {
        let mut prediction = BitVec::zeros(self.num_observables);
        if detectors.is_zero() {
            return prediction;
        }
        let num_nodes = self.num_detectors + 1;
        let mut clusters = Clusters::new(num_nodes, detectors);
        // Half-edge growth: each edge needs two growth increments before it joins its
        // endpoints. Grow every non-neutral cluster uniformly each stage.
        let mut growth = vec![0u8; self.edges.len()];
        let mut in_cluster: Vec<bool> = (0..self.num_detectors).map(|d| detectors.get(d)).collect();
        let mut grown_edges: Vec<usize> = Vec::new();
        let max_stages = 2 * (self.num_detectors + 2);
        for _ in 0..max_stages {
            // Collect defective (non-neutral) cluster roots.
            let mut active_nodes: Vec<usize> = Vec::new();
            for d in 0..self.num_detectors {
                if in_cluster[d] && !clusters.is_neutral(d) {
                    active_nodes.push(d);
                }
            }
            if active_nodes.is_empty() {
                break;
            }
            let mut newly_grown: Vec<usize> = Vec::new();
            let mut incremented = false;
            for &d in &active_nodes {
                for &ei in &self.incident[d] {
                    if growth[ei] >= 2 {
                        continue;
                    }
                    growth[ei] += 1;
                    incremented = true;
                    if growth[ei] >= 2 {
                        newly_grown.push(ei);
                    }
                }
            }
            if !incremented {
                // No progress is possible (isolated defect with no growable edges).
                break;
            }
            for &ei in &newly_grown {
                let e = &self.edges[ei];
                clusters.union(e.a, e.b);
                in_cluster[e.a] = true;
                if e.b != self.boundary {
                    in_cluster[e.b] = true;
                }
                grown_edges.push(ei);
            }
        }

        // Correction extraction: within the grown subgraph, greedily pair up defects
        // (and, when closer, match a defect to the boundary) along shortest grown-edge
        // paths, XOR-ing the observable masks of the path edges into the prediction.
        let mut grown_adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_nodes];
        for &ei in &grown_edges {
            let e = &self.edges[ei];
            grown_adj[e.a].push((e.b, ei));
            grown_adj[e.b].push((e.a, ei));
        }
        let _ = in_cluster;
        let mut unmatched: Vec<usize> = detectors.ones().collect();
        while let Some(&source) = unmatched.first() {
            // BFS from the current defect over grown edges, recording parent edges.
            let mut dist = vec![usize::MAX; num_nodes];
            let mut parent: Vec<Option<(usize, usize)>> = vec![None; num_nodes];
            let mut queue = std::collections::VecDeque::from([source]);
            dist[source] = 0;
            while let Some(node) = queue.pop_front() {
                for &(next, ei) in &grown_adj[node] {
                    if dist[next] == usize::MAX {
                        dist[next] = dist[node] + 1;
                        parent[next] = Some((node, ei));
                        queue.push_back(next);
                    }
                }
            }
            // Closest partner: another unmatched defect, or the boundary node. Ties are
            // broken in favour of a defect partner so adjacent defect pairs are matched
            // to each other rather than independently to the boundary.
            let best_defect = unmatched
                .iter()
                .skip(1)
                .copied()
                .filter(|&d| dist[d] != usize::MAX)
                .min_by_key(|&d| dist[d]);
            let target = match (best_defect, dist[self.boundary]) {
                (Some(d), db) if dist[d] <= db => d,
                (_, db) if db != usize::MAX => self.boundary,
                (Some(d), _) => d,
                (None, _) => {
                    // Isolated defect with no grown path anywhere (no incident edges in
                    // the model); nothing sensible to do but drop it.
                    unmatched.remove(0);
                    continue;
                }
            };
            // Walk the path back to the source, applying edge observables.
            let mut node = target;
            while node != source {
                let (prev, ei) = parent[node].expect("path to source exists");
                for &o in &self.edges[ei].observables {
                    prediction.flip(o);
                }
                node = prev;
            }
            unmatched.retain(|&d| d != source && d != target);
        }
        prediction
    }

    fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    fn num_observables(&self) -> usize {
        self.num_observables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_circuit::schedule::ScheduleSpec;
    use prophunt_circuit::{DetectorErrorModel, MemoryBasis, MemoryExperiment, NoiseModel};
    use prophunt_qec::small::quantum_repetition_code;
    use prophunt_qec::surface::rotated_surface_code_with_layout;

    fn repetition_dem(p: f64) -> DetectorErrorModel {
        let code = quantum_repetition_code(5);
        let schedule = ScheduleSpec::coloration(&code);
        let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
        DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p))
    }

    #[test]
    fn zero_syndrome_gives_zero_prediction() {
        let dem = repetition_dem(1e-3);
        let decoder = UnionFindDecoder::new(&dem);
        assert!(decoder.num_edges() > 0);
        assert!(decoder
            .decode(&BitVec::zeros(dem.num_detectors()))
            .is_zero());
    }

    #[test]
    fn single_edge_syndromes_are_matched_exactly() {
        let dem = repetition_dem(1e-3);
        let decoder = UnionFindDecoder::new(&dem);
        for err in dem.errors().iter().filter(|e| e.detectors.len() <= 2) {
            let mut syndrome = BitVec::zeros(dem.num_detectors());
            for &d in &err.detectors {
                syndrome.set(d, true);
            }
            let mut expected = BitVec::zeros(dem.num_observables());
            for &o in &err.observables {
                expected.set(o, true);
            }
            assert_eq!(
                decoder.decode(&syndrome),
                expected,
                "edge syndrome {:?} mismatch",
                err.detectors
            );
        }
    }

    #[test]
    fn repetition_code_shots_decode_correctly_at_low_noise() {
        let dem = repetition_dem(3e-3);
        let decoder = UnionFindDecoder::new(&dem);
        let mut sampler = dem.sampler(21);
        let mut failures = 0;
        for _ in 0..400 {
            let (dets, obs) = sampler.sample();
            if decoder.decode(&dets) != obs {
                failures += 1;
            }
        }
        assert!(
            failures <= 4,
            "too many union-find failures: {failures}/400"
        );
    }

    #[test]
    fn surface_code_low_noise_failure_rate_is_small() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(2e-3));
        let decoder = UnionFindDecoder::new(&dem);
        let mut sampler = dem.sampler(5);
        let mut failures = 0;
        let shots = 300;
        for _ in 0..shots {
            let (dets, obs) = sampler.sample();
            if decoder.decode(&dets) != obs {
                failures += 1;
            }
        }
        assert!(
            failures < shots / 10,
            "union-find failure rate unexpectedly high: {failures}/{shots}"
        );
    }
}
