//! Detector error models: static propagation of every circuit fault into the
//! circuit-level check matrix `H` and observable matrix `L`, plus Monte-Carlo sampling.
//!
//! This is the circuit-level model of the paper's Section 2.7: each elementary fault the
//! noise model can inject is propagated (deterministically, using the CNOT propagation
//! rules of Figure 3b) through the remainder of the circuit, and recorded by the set of
//! detectors and logical observables it flips. Faults with identical signatures are
//! merged into a single *error mechanism* with a combined probability. The resulting
//! bipartite structure (error mechanisms vs. detectors) is exactly the decoding graph
//! PropHunt's ambiguity analysis walks over.

use crate::builder::MemoryExperiment;
use crate::noise::{Fault, NoiseModel, SparsePauli};
use crate::ops::Op;
use prophunt_gf2::{BitMatrix, BitVec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The circuit fault (or one of several merged faults) behind an [`ErrorMechanism`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSource {
    /// Moment index of the faulty operation.
    pub moment: usize,
    /// The operation the fault is attached to.
    pub op: Op,
    /// The injected Pauli error.
    pub error: SparsePauli,
}

/// One column of the detector error model: a set of detectors and observables flipped
/// together with some probability.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorMechanism {
    /// Probability that this mechanism fires in one shot.
    pub probability: f64,
    /// Sorted detector indices flipped by the mechanism.
    pub detectors: Vec<usize>,
    /// Sorted observable indices flipped by the mechanism.
    pub observables: Vec<usize>,
    /// The circuit faults merged into this mechanism.
    pub sources: Vec<FaultSource>,
}

impl ErrorMechanism {
    /// Returns `true` if the mechanism flips at least one logical observable.
    pub fn flips_observable(&self) -> bool {
        !self.observables.is_empty()
    }
}

/// The detector error model of a noisy memory experiment.
///
/// Rows of [`DetectorErrorModel::h_matrix`] are detectors, columns are error mechanisms;
/// rows of [`DetectorErrorModel::l_matrix`] are logical observables.
#[derive(Debug, Clone)]
pub struct DetectorErrorModel {
    num_detectors: usize,
    num_observables: usize,
    errors: Vec<ErrorMechanism>,
}

impl DetectorErrorModel {
    /// Builds the detector error model of `experiment` under `noise` by enumerating and
    /// propagating every elementary fault.
    pub fn from_experiment(experiment: &MemoryExperiment, noise: &NoiseModel) -> Self {
        let faults = noise.enumerate_faults(&experiment.circuit);
        Self::from_faults(experiment, &faults)
    }

    /// Builds a detector error model from an explicit fault list (used by tests and by
    /// effective-distance analyses that want unit-probability faults).
    pub fn from_faults(experiment: &MemoryExperiment, faults: &[Fault]) -> Self {
        let circuit = &experiment.circuit;
        let num_qubits = circuit.num_qubits();

        // Measurement index of each (moment, op_index).
        let mut meas_index: Vec<Vec<usize>> = Vec::with_capacity(circuit.num_moments());
        let mut counter = 0usize;
        for moment in circuit.moments() {
            let mut row = Vec::with_capacity(moment.len());
            for op in moment {
                if op.is_measurement() {
                    row.push(counter);
                    counter += 1;
                } else {
                    row.push(usize::MAX);
                }
            }
            meas_index.push(row);
        }

        // Membership maps from measurement index to detectors / observables.
        let mut meas_to_detectors: Vec<Vec<usize>> = vec![Vec::new(); counter];
        for (d, members) in experiment.detectors.iter().enumerate() {
            for &m in members {
                meas_to_detectors[m].push(d);
            }
        }
        let mut meas_to_observables: Vec<Vec<usize>> = vec![Vec::new(); counter];
        for (o, members) in experiment.observables.iter().enumerate() {
            for &m in members {
                meas_to_observables[m].push(o);
            }
        }

        let mut frame_x = vec![false; num_qubits];
        let mut frame_z = vec![false; num_qubits];
        let mut touched: Vec<usize> = Vec::new();
        let mut merged: HashMap<(Vec<usize>, Vec<usize>), usize> = HashMap::new();
        let mut errors: Vec<ErrorMechanism> = Vec::new();

        for fault in faults {
            // Inject the error.
            for &(q, pauli) in &fault.error {
                if pauli.has_x() {
                    frame_x[q] = !frame_x[q];
                }
                if pauli.has_z() {
                    frame_z[q] = !frame_z[q];
                }
                touched.push(q);
            }

            // Propagate through the rest of the circuit, recording measurement flips.
            let mut flipped_meas: Vec<usize> = Vec::new();
            let start_op = if fault.pre_op {
                fault.op_index
            } else {
                fault.op_index.saturating_add(1)
            };
            for mi in fault.moment..circuit.num_moments() {
                let ops = circuit.moment(mi);
                let first = if mi == fault.moment {
                    start_op.min(ops.len())
                } else {
                    0
                };
                for (oi, op) in ops.iter().enumerate().skip(first) {
                    match *op {
                        Op::Cnot(c, t) => {
                            if frame_x[c] {
                                frame_x[t] = !frame_x[t];
                                touched.push(t);
                            }
                            if frame_z[t] {
                                frame_z[c] = !frame_z[c];
                                touched.push(c);
                            }
                        }
                        Op::H(q) => {
                            let (x, z) = (frame_x[q], frame_z[q]);
                            frame_x[q] = z;
                            frame_z[q] = x;
                        }
                        Op::ResetZ(q) | Op::ResetX(q) => {
                            frame_x[q] = false;
                            frame_z[q] = false;
                        }
                        Op::MeasureZ(q) => {
                            if frame_x[q] {
                                flipped_meas.push(meas_index[mi][oi]);
                            }
                        }
                        Op::MeasureX(q) => {
                            if frame_z[q] {
                                flipped_meas.push(meas_index[mi][oi]);
                            }
                        }
                    }
                }
            }

            // Clear the frame for the next fault.
            for &q in &touched {
                frame_x[q] = false;
                frame_z[q] = false;
            }
            touched.clear();

            // Convert measurement flips into detector / observable flips.
            let mut det_parity: HashMap<usize, bool> = HashMap::new();
            let mut obs_parity: HashMap<usize, bool> = HashMap::new();
            for &m in &flipped_meas {
                for &d in &meas_to_detectors[m] {
                    *det_parity.entry(d).or_insert(false) ^= true;
                }
                for &o in &meas_to_observables[m] {
                    *obs_parity.entry(o).or_insert(false) ^= true;
                }
            }
            let mut detectors: Vec<usize> = det_parity
                .into_iter()
                .filter_map(|(d, on)| on.then_some(d))
                .collect();
            let mut observables: Vec<usize> = obs_parity
                .into_iter()
                .filter_map(|(o, on)| on.then_some(o))
                .collect();
            detectors.sort_unstable();
            observables.sort_unstable();
            if detectors.is_empty() && observables.is_empty() {
                continue;
            }

            let source = FaultSource {
                moment: fault.moment,
                op: fault.op,
                error: fault.error.clone(),
            };
            let key = (detectors.clone(), observables.clone());
            match merged.get(&key) {
                Some(&idx) => {
                    let mech = &mut errors[idx];
                    mech.probability = mech.probability * (1.0 - fault.probability)
                        + fault.probability * (1.0 - mech.probability);
                    mech.sources.push(source);
                }
                None => {
                    merged.insert(key, errors.len());
                    errors.push(ErrorMechanism {
                        probability: fault.probability,
                        detectors,
                        observables,
                        sources: vec![source],
                    });
                }
            }
        }

        DetectorErrorModel {
            num_detectors: experiment.num_detectors(),
            num_observables: experiment.num_observables(),
            errors,
        }
    }

    /// Rebuilds a detector error model from its serialized parts: detector/observable
    /// counts and an explicit mechanism list. This is the constructor behind the
    /// `prophunt-formats` `.dem` parser; mechanisms reconstructed from a file carry no
    /// [`FaultSource`]s (the file format does not record circuit provenance).
    ///
    /// Detector and observable index lists are sorted; mechanisms are kept in the given
    /// order and are *not* merged by signature.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CircuitError::InvalidErrorModel`] if any mechanism names a detector
    /// `>= num_detectors` or observable `>= num_observables`, repeats an index, or has a
    /// probability outside `[0, 1]`.
    pub fn from_parts(
        num_detectors: usize,
        num_observables: usize,
        mut errors: Vec<ErrorMechanism>,
    ) -> Result<Self, crate::CircuitError> {
        let invalid = |reason: String| crate::CircuitError::InvalidErrorModel { reason };
        for (i, err) in errors.iter_mut().enumerate() {
            if !(0.0..=1.0).contains(&err.probability) {
                return Err(invalid(format!(
                    "error mechanism {i} has probability {} outside [0, 1]",
                    err.probability
                )));
            }
            err.detectors.sort_unstable();
            err.observables.sort_unstable();
            if err.detectors.windows(2).any(|w| w[0] == w[1]) {
                return Err(invalid(format!("error mechanism {i} repeats a detector")));
            }
            if err.observables.windows(2).any(|w| w[0] == w[1]) {
                return Err(invalid(format!(
                    "error mechanism {i} repeats an observable"
                )));
            }
            if let Some(&d) = err.detectors.last() {
                if d >= num_detectors {
                    return Err(invalid(format!(
                        "error mechanism {i} flips detector {d} but the model has {num_detectors}"
                    )));
                }
            }
            if let Some(&o) = err.observables.last() {
                if o >= num_observables {
                    return Err(invalid(format!(
                        "error mechanism {i} flips observable {o} but the model has {num_observables}"
                    )));
                }
            }
        }
        Ok(DetectorErrorModel {
            num_detectors,
            num_observables,
            errors,
        })
    }

    /// Returns `true` if `self` and `other` describe the same error distribution: equal
    /// detector/observable counts and, mechanism by mechanism *in order*, bit-identical
    /// probabilities and identical detector/observable signatures.
    ///
    /// Fault provenance ([`ErrorMechanism::sources`]) is deliberately ignored — it is
    /// what the `.dem` file format cannot carry, and it does not affect sampling or
    /// decoding. Two models equal under this predicate produce identical
    /// [`DemSampler`] streams for every seed.
    pub fn same_distribution(&self, other: &Self) -> bool {
        self.num_detectors == other.num_detectors
            && self.num_observables == other.num_observables
            && self.errors.len() == other.errors.len()
            && self.errors.iter().zip(other.errors.iter()).all(|(a, b)| {
                a.probability.to_bits() == b.probability.to_bits()
                    && a.detectors == b.detectors
                    && a.observables == b.observables
            })
    }

    /// Returns the number of detectors (rows of `H`).
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Returns the number of logical observables (rows of `L`).
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Returns the number of distinct error mechanisms (columns of `H` and `L`).
    pub fn num_errors(&self) -> usize {
        self.errors.len()
    }

    /// Returns the error mechanisms.
    pub fn errors(&self) -> &[ErrorMechanism] {
        &self.errors
    }

    /// Returns error mechanism `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn error(&self, index: usize) -> &ErrorMechanism {
        &self.errors[index]
    }

    /// Returns the circuit-level check matrix `H` (detectors × error mechanisms).
    pub fn h_matrix(&self) -> BitMatrix {
        let mut m = BitMatrix::zeros(self.num_detectors, self.errors.len());
        for (col, err) in self.errors.iter().enumerate() {
            for &d in &err.detectors {
                m.set(d, col, true);
            }
        }
        m
    }

    /// Returns the circuit-level observable matrix `L` (observables × error mechanisms).
    pub fn l_matrix(&self) -> BitMatrix {
        let mut m = BitMatrix::zeros(self.num_observables, self.errors.len());
        for (col, err) in self.errors.iter().enumerate() {
            for &o in &err.observables {
                m.set(o, col, true);
            }
        }
        m
    }

    /// Returns, for each detector, the indices of error mechanisms that flip it — the
    /// adjacency used by subgraph expansion and by matching-style decoders.
    pub fn detector_to_errors(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_detectors];
        for (col, err) in self.errors.iter().enumerate() {
            for &d in &err.detectors {
                out[d].push(col);
            }
        }
        out
    }

    /// Creates a Monte-Carlo sampler over this model with the given seed.
    pub fn sampler(&self, seed: u64) -> DemSampler {
        DemSampler {
            probabilities: self.errors.iter().map(|e| e.probability).collect(),
            detectors: self.errors.iter().map(|e| e.detectors.clone()).collect(),
            observables: self.errors.iter().map(|e| e.observables.clone()).collect(),
            num_detectors: self.num_detectors,
            num_observables: self.num_observables,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

/// Samples detector/observable outcomes from a [`DetectorErrorModel`].
///
/// Sampling happens directly in detector space: each error mechanism fires independently
/// with its probability and XORs its detector and observable signature into the shot,
/// which is equivalent to Pauli-frame simulation of the underlying circuit noise.
#[derive(Debug, Clone)]
pub struct DemSampler {
    probabilities: Vec<f64>,
    detectors: Vec<Vec<usize>>,
    observables: Vec<Vec<usize>>,
    num_detectors: usize,
    num_observables: usize,
    rng: SmallRng,
}

impl DemSampler {
    /// Samples one shot, returning `(detector outcomes, observable flips, fired errors)`.
    pub fn sample_with_errors(&mut self) -> (BitVec, BitVec, Vec<usize>) {
        let mut dets = BitVec::zeros(self.num_detectors);
        let mut obs = BitVec::zeros(self.num_observables);
        let mut fired = Vec::new();
        for (i, &p) in self.probabilities.iter().enumerate() {
            if self.rng.gen_bool(p) {
                fired.push(i);
                for &d in &self.detectors[i] {
                    dets.flip(d);
                }
                for &o in &self.observables[i] {
                    obs.flip(o);
                }
            }
        }
        (dets, obs, fired)
    }

    /// Samples one shot, returning `(detector outcomes, observable flips)`.
    pub fn sample(&mut self) -> (BitVec, BitVec) {
        let (d, o, _) = self.sample_with_errors();
        (d, o)
    }

    /// Returns the number of detectors per shot.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Returns the number of observables per shot.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MemoryBasis, MemoryExperiment};
    use crate::noise::Pauli;
    use crate::schedule::ScheduleSpec;
    use prophunt_qec::small::quantum_repetition_code;
    use prophunt_qec::surface::rotated_surface_code_with_layout;
    use prophunt_qec::StabilizerKind;

    fn d3_experiment(rounds: usize) -> (prophunt_qec::CssCode, MemoryExperiment) {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, rounds, MemoryBasis::Z).unwrap();
        (code, exp)
    }

    #[test]
    fn noiseless_model_has_no_error_mechanisms() {
        let (_, exp) = d3_experiment(2);
        let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::noiseless());
        assert_eq!(dem.num_errors(), 0);
    }

    #[test]
    fn every_mechanism_flips_something_and_probabilities_are_sane() {
        let (_, exp) = d3_experiment(3);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3));
        assert!(dem.num_errors() > 100);
        for err in dem.errors() {
            assert!(!err.detectors.is_empty() || !err.observables.is_empty());
            assert!(err.probability > 0.0 && err.probability < 0.1);
            assert!(!err.sources.is_empty());
            assert!(err.detectors.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn initial_data_x_error_flips_round_zero_z_detectors_and_observable() {
        let (code, exp) = d3_experiment(3);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3));
        // Find the mechanism sourced from an X error after the initial reset of data
        // qubit 4 (the central qubit, in the support of L_Z).
        let mech = dem
            .errors()
            .iter()
            .find(|e| {
                e.sources.iter().any(|s| {
                    s.moment == 0 && s.op == Op::ResetZ(4) && s.error == vec![(4, Pauli::X)]
                })
            })
            .expect("central data qubit reset fault must appear in the DEM");
        // It flips the two round-0 detectors of the Z stabilizers containing qubit 4 and
        // the logical observable.
        assert_eq!(mech.detectors.len(), 2);
        for &d in &mech.detectors {
            let info = exp.detector_info[d];
            assert_eq!(info.round, 0);
            let (kind, index) = exp.schedule.kind_index(info.stabilizer);
            assert_eq!(kind, StabilizerKind::Z);
            assert!(code
                .stabilizer_support(StabilizerKind::Z, index)
                .contains(&4));
        }
        assert_eq!(mech.observables, vec![0]);
    }

    #[test]
    fn ancilla_measurement_flip_gives_time_pair() {
        let (_, exp) = d3_experiment(4);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3));
        // A measurement flip on a Z ancilla in a middle round flips exactly the two
        // detectors comparing that round to its neighbours, and no observable.
        let mech = dem
            .errors()
            .iter()
            .find(|e| {
                e.sources.iter().any(|s| {
                    matches!(s.op, Op::MeasureZ(q) if q >= 9)
                        && exp.round_of_moment(s.moment) == Some(1)
                        && s.error.len() == 1
                })
            })
            .expect("ancilla measurement flip must appear");
        assert_eq!(mech.detectors.len(), 2);
        assert!(mech.observables.is_empty());
        let rounds: Vec<usize> = mech
            .detectors
            .iter()
            .map(|&d| exp.detector_info[d].round)
            .collect();
        assert_eq!(rounds, vec![1, 2]);
    }

    #[test]
    fn h_and_l_matrices_have_matching_shapes() {
        let (_, exp) = d3_experiment(2);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(2e-3));
        let h = dem.h_matrix();
        let l = dem.l_matrix();
        assert_eq!(h.num_rows(), exp.num_detectors());
        assert_eq!(h.num_cols(), dem.num_errors());
        assert_eq!(l.num_rows(), 1);
        assert_eq!(l.num_cols(), dem.num_errors());
        // detector_to_errors is the transpose adjacency of H.
        let adj = dem.detector_to_errors();
        for (d, errs) in adj.iter().enumerate() {
            for &e in errs {
                assert!(h.get(d, e));
            }
        }
    }

    #[test]
    fn no_single_mechanism_is_an_undetected_logical_error_for_good_schedule() {
        // With a valid schedule and d = 3, no single fault may flip the observable while
        // flipping no detector (that would mean d_eff = 1).
        let (_, exp) = d3_experiment(3);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3));
        for err in dem.errors() {
            assert!(
                !(err.detectors.is_empty() && err.flips_observable()),
                "found an undetectable single-fault logical error: {err:?}"
            );
        }
    }

    #[test]
    fn repetition_code_dem_is_a_repetition_decoding_graph() {
        let code = quantum_repetition_code(5);
        let schedule = ScheduleSpec::coloration(&code);
        let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(1e-3));
        // Every mechanism flips at most 2 detectors (the decoding graph is matchable).
        for err in dem.errors() {
            assert!(
                err.detectors.len() <= 2,
                "repetition DEM must be graph-like: {err:?}"
            );
        }
    }

    #[test]
    fn sampler_is_deterministic_per_seed_and_zero_for_zero_noise() {
        let (_, exp) = d3_experiment(2);
        let dem =
            DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(5e-3));
        let mut a = dem.sampler(42);
        let mut b = dem.sampler(42);
        for _ in 0..20 {
            assert_eq!(a.sample(), b.sample());
        }
        let noiseless = DetectorErrorModel::from_experiment(&exp, &NoiseModel::noiseless());
        let mut s = noiseless.sampler(1);
        let (d, o) = s.sample();
        assert!(d.is_zero() && o.is_zero());
    }

    #[test]
    fn sampled_detector_rate_tracks_physical_error_rate() {
        let (_, exp) = d3_experiment(3);
        let p = 2e-2;
        let dem = DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p));
        let mut sampler = dem.sampler(7);
        let shots = 500;
        let mut flips = 0usize;
        for _ in 0..shots {
            let (d, _) = sampler.sample();
            flips += d.weight();
        }
        let mean = flips as f64 / shots as f64;
        // The expected number of flipped detectors per shot is of order
        // (total error probability); just check it is clearly nonzero and bounded.
        assert!(mean > 0.5 && mean < 50.0, "mean flipped detectors {mean}");
    }
}
