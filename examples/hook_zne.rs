//! Hook-ZNE demo: compares the estimator bias of Distance-Scaling ZNE against Hook-ZNE
//! (fine-grained logical-noise scaling from intermediate PropHunt circuits) for the
//! paper's three distance ranges.
//!
//! Run with `cargo run --release --example hook_zne`.

use prophunt_suite::zne::{amplification_range, compare_protocols};

fn main() {
    println!("Noise amplification available at fixed d = 9 (Figure 16a):");
    for lambda in [1.5, 2.14, 3.0] {
        let range = amplification_range(lambda, 9.0, 5.0, 0.5);
        println!(
            "  lambda = {lambda:>4}: amplification 1.0x .. {:.1}x in {} steps",
            range.last().unwrap(),
            range.len()
        );
    }

    println!();
    println!("Estimator bias, DS-ZNE vs Hook-ZNE (Figure 16b; lambda = 2, depth 50, 20k shots):");
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "range", "DS-ZNE", "Hook-ZNE", "ratio"
    );
    for d_max in [13usize, 11, 9] {
        let cmp = compare_protocols(d_max, 2.0, 50, 20_000, 60, 2024);
        println!(
            "{:<12} {:>12.4} {:>12.4} {:>7.1}x",
            cmp.label,
            cmp.ds_zne_bias,
            cmp.hook_zne_bias,
            cmp.ds_zne_bias / cmp.hook_zne_bias.max(1e-9)
        );
    }
}
