//! The existing MaxSAT-guided greedy descent, adapted behind [`Strategy`].

use crate::strategy::{Incumbent, Proposal, SearchContext, Strategy};
use prophunt::{PropHunt, PropHuntConfig};
use prophunt_circuit::MemoryBasis;
use prophunt_obs::Counter;
use prophunt_runtime::RuntimeConfig;

/// The paper's optimizer as a portfolio arm: each round runs **one**
/// `build_graph → sample → solve → enumerate → verify → apply` pipeline
/// iteration ([`PropHunt::step`]) on the instance's working schedule,
/// alternating the analysed memory basis between rounds exactly like
/// [`PropHunt::try_optimize`] alternates it between iterations.
///
/// Unlike the local-search arms this strategy does not chase depth directly:
/// it applies the minimum-depth *verified effective-distance-restoring*
/// changes, pulling the portfolio toward schedules that are also good circuits,
/// not just shallow ones.
///
/// Incumbent policy: adopts the portfolio incumbent as its working schedule
/// whenever the incumbent is strictly shallower — descent then continues from
/// the portfolio's best known point (with the decoding-graph cache rebuilt for
/// the adopted schedule on the next step).
#[derive(Debug)]
pub struct MaxSatDescent {
    prophunt: PropHunt,
    schedule: prophunt_circuit::schedule::ScheduleSpec,
    depth: usize,
    /// Hoisted `search.maxsat.iterations` counter handle (None when the
    /// context's observability is disabled).
    iterations: Option<Counter>,
}

impl MaxSatDescent {
    /// Creates an instance working on the context's initial schedule.
    ///
    /// `seed` becomes the instance's private optimizer seed; the inner
    /// runtime is single-threaded so the portfolio's worker pool stays the
    /// only source of parallelism (nesting bounded pools would oversubscribe
    /// without changing any result).
    pub fn new(ctx: &SearchContext, seed: u64) -> MaxSatDescent {
        let config = PropHuntConfig {
            iterations: 1,
            samples_per_iteration: ctx.params.samples_per_iteration,
            rounds: ctx.params.memory_rounds,
            physical_error_rate: 1e-3,
            noise: Some(ctx.params.noise),
            maxsat_budget: ctx.params.maxsat_budget,
            max_subgraph_steps: 60,
            max_subgraphs_per_iteration: 6,
            runtime: RuntimeConfig::new(1, 16, seed),
        };
        let depth = ctx
            .initial
            .depth()
            .expect("search context schedules are validated");
        MaxSatDescent {
            prophunt: PropHunt::new(ctx.code.clone(), config),
            schedule: ctx.initial.clone(),
            depth,
            iterations: ctx.obs.counter("search.maxsat.iterations"),
        }
    }
}

impl Strategy for MaxSatDescent {
    fn name(&self) -> &'static str {
        "maxsat"
    }

    fn propose(&mut self, round: usize, _seed: u64) -> Proposal {
        // The optimizer derives all stage randomness from (its own seed,
        // iteration); feeding the portfolio round as the iteration number
        // keeps the streams distinct across rounds, and the per-instance
        // optimizer seed keeps them distinct across instances.
        let basis = if round.is_multiple_of(2) {
            MemoryBasis::Z
        } else {
            MemoryBasis::X
        };
        if let Some(c) = &self.iterations {
            c.inc();
        }
        let record = self.prophunt.step(round, basis, &mut self.schedule);
        self.depth = record.depth;
        Proposal {
            schedule: self.schedule.clone(),
            depth: self.depth,
        }
    }

    fn observe(&mut self, incumbent: &Incumbent, accepted: bool) {
        if !accepted && incumbent.depth < self.depth {
            self.schedule = incumbent.schedule.clone();
            self.depth = incumbent.depth;
        }
    }
}
