//! Monte-Carlo logical-error-rate estimation with deterministic adaptive shot budgets.
//!
//! Sampling is split into fixed-size *chunks* of `runtime.chunk_size()` shots; chunk
//! `c` draws its shots from an independent RNG stream seeded with
//! `SeedStream::new(seed).seed_for(c)`. The chunk boundaries and seeds depend only on
//! `(seed, chunk_size)`, never on the worker-thread count, and adaptive stopping
//! decisions ([`ShotBudget`]) are evaluated *in chunk order*, so a fixed
//! `(seed, chunk_size)` gives bit-identical failure counts at any thread count —
//! including runs that stop early.
//!
//! Two per-chunk kernels implement the same contract behind the [`Engine`]
//! selector: the scalar kernel samples and decodes one shot at a time, while the
//! bit-parallel *frame* kernel packs 64 shots per machine word
//! ([`DemSampler::sample_frames`](prophunt_circuit::DemSampler::sample_frames)),
//! transposes the frames into per-shot syndromes and decodes the whole chunk
//! through the batch pipeline ([`decode_shots_cached`]): zero-syndrome fast
//! path, per-chunk syndrome-dedup cache, then [`Decoder::decode_batch`] on the
//! distinct residue. Each engine is a pure function of `(seed, chunk_size)`,
//! but the two lay out the chunk's RNG stream differently (shot-major vs
//! mechanism-major), so their shot sequences — and hence failure counts —
//! differ; what is identical across engines is the per-shot decode result on
//! the same error frames. The pipeline's tallies surface as the deterministic
//! `ler.decode.{zero,cache.hit,cache.miss,bp.converged,osd.calls}` counters,
//! incremented — like every LER counter — only in the in-order adaptive scan.

use crate::batch::{decode_shots_cached, DecodeCache, DecodeStats};
use crate::Decoder;
use prophunt_circuit::DetectorErrorModel;
use prophunt_gf2::{transpose_lane_words, BitVec};
use prophunt_obs::{duration_ns, Histogram, Obs};
use prophunt_runtime::{Runtime, SeedStream};
use std::time::{Duration, Instant};

/// The result of a Monte-Carlo logical-error-rate estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogicalErrorEstimate {
    /// Number of shots sampled.
    pub shots: usize,
    /// Number of shots in which the decoder's observable prediction was wrong.
    pub failures: usize,
}

impl LogicalErrorEstimate {
    /// The empty estimate (0 shots, 0 failures).
    pub const ZERO: LogicalErrorEstimate = LogicalErrorEstimate {
        shots: 0,
        failures: 0,
    };

    /// Returns the estimated logical error rate (failures per shot).
    ///
    /// An estimate with 0 shots has rate `0.0` by convention (pinned by tests): it
    /// reports "no failures observed", never `NaN`.
    pub fn rate(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.failures as f64 / self.shots as f64
    }

    /// Returns the binomial standard error of the estimate.
    ///
    /// Degenerate estimates are pinned to `0.0` rather than `NaN`: 0 shots, 0
    /// failures (`p = 0`) and all-failures (`p = 1`) all return `0.0`. Use
    /// [`Self::relative_standard_error`] when a stopping rule needs "no
    /// information yet" to read as *infinite* uncertainty instead.
    pub fn standard_error(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let p = self.rate();
        (p * (1.0 - p) / self.shots as f64).sqrt()
    }

    /// Returns the relative standard error `standard_error / rate` — the quantity
    /// targeted by [`ShotBudget::TargetRse`].
    ///
    /// With 0 shots or 0 failures the rate estimate carries no relative-precision
    /// information, so the RSE is `f64::INFINITY` (an adaptive run must keep
    /// sampling, not stop at a spuriously "precise" zero).
    pub fn relative_standard_error(&self) -> f64 {
        if self.shots == 0 || self.failures == 0 {
            return f64::INFINITY;
        }
        self.standard_error() / self.rate()
    }

    /// Combines two estimates (e.g. X- and Z-basis memory experiments) by summing shots
    /// and failures.
    pub fn combined(self, other: LogicalErrorEstimate) -> LogicalErrorEstimate {
        LogicalErrorEstimate {
            shots: self.shots + other.shots,
            failures: self.failures + other.failures,
        }
    }
}

/// How many Monte-Carlo shots an estimation job may spend, and when it may stop
/// early.
///
/// Budgets are evaluated at *chunk* granularity in chunk-index order, which keeps
/// early-stopped runs deterministic: a [`ShotBudget::MaxFailures`] or
/// [`ShotBudget::TargetRse`] run stops after exactly the chunk prefix of the
/// corresponding [`ShotBudget::Fixed`] run (same `(seed, chunk_size)`) whose
/// cumulative tally first satisfies the rule, at any thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShotBudget {
    /// Sample exactly `shots` shots.
    Fixed {
        /// Number of shots to sample.
        shots: usize,
    },
    /// Stop at the end of the first chunk whose cumulative failure count reaches
    /// `max_failures`, sampling at most `max_shots` shots.
    MaxFailures {
        /// Failure count that ends the run.
        max_failures: usize,
        /// Hard cap on the number of shots.
        max_shots: usize,
    },
    /// Stop at the end of the first chunk where the cumulative
    /// [`LogicalErrorEstimate::relative_standard_error`] drops to `target` or
    /// below, sampling at most `max_shots` shots.
    TargetRse {
        /// Relative standard error that ends the run.
        target: f64,
        /// Hard cap on the number of shots.
        max_shots: usize,
    },
}

impl ShotBudget {
    /// A fixed budget of exactly `shots` shots.
    pub fn fixed(shots: usize) -> ShotBudget {
        ShotBudget::Fixed { shots }
    }

    /// Returns the maximum number of shots the budget may spend.
    pub fn max_shots(&self) -> usize {
        match *self {
            ShotBudget::Fixed { shots } => shots,
            ShotBudget::MaxFailures { max_shots, .. } => max_shots,
            ShotBudget::TargetRse { max_shots, .. } => max_shots,
        }
    }

    /// Returns the adaptive stop reason triggered by the cumulative estimate, if
    /// any. [`ShotBudget::Fixed`] never stops early.
    fn adaptive_stop(&self, cumulative: &LogicalErrorEstimate) -> Option<LerStopReason> {
        match *self {
            ShotBudget::Fixed { .. } => None,
            ShotBudget::MaxFailures { max_failures, .. } => (max_failures > 0
                && cumulative.failures >= max_failures)
                .then_some(LerStopReason::MaxFailuresReached),
            ShotBudget::TargetRse { target, .. } => (cumulative.failures > 0
                && cumulative.relative_standard_error() <= target)
                .then_some(LerStopReason::TargetRseReached),
        }
    }
}

/// Why an estimation run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LerStopReason {
    /// The budget's (maximum) shot count was fully sampled.
    ShotsExhausted,
    /// A [`ShotBudget::MaxFailures`] rule was satisfied before the shot cap.
    MaxFailuresReached,
    /// A [`ShotBudget::TargetRse`] rule was satisfied before the shot cap.
    TargetRseReached,
}

impl LerStopReason {
    /// A stable machine-readable name (used in report records).
    pub fn as_str(&self) -> &'static str {
        match self {
            LerStopReason::ShotsExhausted => "shots_exhausted",
            LerStopReason::MaxFailuresReached => "max_failures",
            LerStopReason::TargetRseReached => "target_rse",
        }
    }
}

/// Cumulative progress after one completed chunk, reported to the observer of
/// [`estimate_with_budget`] in chunk-index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkProgress {
    /// Index of the chunk that just completed (0-based).
    pub chunk: usize,
    /// Total shots sampled through this chunk.
    pub shots: usize,
    /// Total failures observed through this chunk.
    pub failures: usize,
}

/// Which per-chunk sampling/decoding kernel an estimation run uses.
///
/// Both engines satisfy the same determinism contract — results are a pure
/// function of `(seed, chunk_size, engine)` at any thread count — and both spend
/// exactly one RNG draw per error mechanism per shot. They lay that stream out
/// differently (scalar: shot-major; frames: mechanism-major within each 64-shot
/// block), so the two engines sample *different* shot sequences for the same
/// seed and are not expected to report identical failure counts. On the same
/// error frames their per-shot decode results are identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Sample and decode one shot at a time.
    #[default]
    Scalar,
    /// Bit-parallel kernel: sample 64 shots per machine word, transpose, and
    /// batch-decode via [`Decoder::decode_batch`].
    Frames,
}

impl Engine {
    /// A stable machine-readable name (used in report records and CLI flags).
    pub fn as_str(&self) -> &'static str {
        match self {
            Engine::Scalar => "scalar",
            Engine::Frames => "frames",
        }
    }

    /// Parses the name produced by [`Engine::as_str`].
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "scalar" => Some(Engine::Scalar),
            "frames" => Some(Engine::Frames),
            _ => None,
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Engine, String> {
        Engine::parse(s).ok_or_else(|| format!("unknown engine '{s}' (expected scalar|frames)"))
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Estimates the logical error rate of `decoder` on shots sampled from `dem`,
/// spending at most `budget` and stopping early when the budget's adaptive rule is
/// satisfied.
///
/// Chunks are evaluated in parallel waves, but the stopping rule is applied by
/// scanning completed chunks *in chunk-index order*, so the returned estimate (and
/// the observer's event stream) is a pure function of `(seed, chunk_size, budget)`
/// — the thread count changes wall-clock time only. In particular, an
/// early-stopped run returns exactly the cumulative tally of chunks `0..=k` of the
/// equivalent [`ShotBudget::Fixed`] run, where `k` is the first chunk satisfying
/// the rule.
///
/// Equivalent to [`estimate_with_budget_engine`] with [`Engine::Scalar`].
///
/// `observer` is invoked once per counted chunk with the cumulative progress.
pub fn estimate_with_budget(
    dem: &DetectorErrorModel,
    decoder: &dyn Decoder,
    budget: ShotBudget,
    seed: u64,
    runtime: &Runtime,
    observer: &mut dyn FnMut(ChunkProgress),
) -> (LogicalErrorEstimate, LerStopReason) {
    estimate_with_budget_engine(
        dem,
        decoder,
        budget,
        seed,
        Engine::Scalar,
        runtime,
        observer,
    )
}

/// [`estimate_with_budget`] with an explicit [`Engine`] selecting the per-chunk
/// kernel.
///
/// The chunk structure (boundaries, seeds, in-order adaptive scan) is identical
/// for both engines; only the kernel that turns a `(chunk_shots, chunk_seed)`
/// pair into a failure count differs. A fixed `(seed, chunk_size, engine)` is
/// bit-identical at any thread count.
pub fn estimate_with_budget_engine(
    dem: &DetectorErrorModel,
    decoder: &dyn Decoder,
    budget: ShotBudget,
    seed: u64,
    engine: Engine,
    runtime: &Runtime,
    observer: &mut dyn FnMut(ChunkProgress),
) -> (LogicalErrorEstimate, LerStopReason) {
    estimate_with_budget_engine_cached(
        dem,
        decoder,
        budget,
        seed,
        engine,
        DecodeCache::default(),
        runtime,
        observer,
    )
}

/// [`estimate_with_budget_engine`] with an explicit [`DecodeCache`] knob for
/// the frames engine's batch decode pipeline.
///
/// The cache is bit-identity-preserving (every prediction is a pure function
/// of its syndrome), so the returned estimate is the same for both settings —
/// which is exactly what the knob makes checkable; only wall-clock and the
/// `ler.decode.*` counters differ. The scalar engine streams shot by shot and
/// ignores the knob.
#[allow(clippy::too_many_arguments)]
pub fn estimate_with_budget_engine_cached(
    dem: &DetectorErrorModel,
    decoder: &dyn Decoder,
    budget: ShotBudget,
    seed: u64,
    engine: Engine,
    cache: DecodeCache,
    runtime: &Runtime,
    observer: &mut dyn FnMut(ChunkProgress),
) -> (LogicalErrorEstimate, LerStopReason) {
    let max_shots = budget.max_shots();
    if max_shots == 0 {
        return (LogicalErrorEstimate::ZERO, LerStopReason::ShotsExhausted);
    }
    let chunk = runtime.chunk_size();
    let total_chunks = max_shots.div_ceil(chunk);
    let stream = SeedStream::new(seed);
    let mut cumulative = LogicalErrorEstimate::ZERO;
    let mut done = 0usize;
    // LER counters are incremented only in the in-order adaptive scan below:
    // a wave may execute surplus chunks past an early stop, but those are
    // discarded, so the counted chunk prefix — and every counter — is a pure
    // function of (seed, chunk_size, budget), never of the thread count.
    let obs = runtime.obs();
    let chunks_ctr = obs.counter("ler.chunks");
    let shots_ctr = obs.counter("ler.shots");
    let failures_ctr = obs.counter("ler.failures");
    // The batch decode pipeline runs in the frames kernel only, so its
    // counters are registered only there (a scalar run reporting them as
    // zero would read as "the cache did nothing" rather than "not applicable").
    let decode_ctr = |name: &str| match engine {
        Engine::Frames => obs.counter(name),
        Engine::Scalar => None,
    };
    let zero_ctr = decode_ctr("ler.decode.zero");
    let hit_ctr = decode_ctr("ler.decode.cache.hit");
    let miss_ctr = decode_ctr("ler.decode.cache.miss");
    let bp_ctr = decode_ctr("ler.decode.bp.converged");
    let osd_ctr = decode_ctr("ler.decode.osd.calls");
    while done < total_chunks {
        // One wave of chunks. The wave size is a wall-clock knob only: stopping is
        // decided by an in-order scan below, so overshooting a wave never changes
        // the result — surplus chunks are simply discarded.
        let wave = (runtime.threads() * 2).clamp(1, total_chunks - done);
        let results = runtime.run_tasks(wave, |i| {
            let c = done + i;
            let chunk_shots = chunk.min(max_shots - c * chunk);
            let chunk_seed = stream.seed_for(c as u64);
            match engine {
                Engine::Scalar => run_shots(dem, decoder, chunk_shots, chunk_seed, obs),
                Engine::Frames => {
                    run_shots_frames(dem, decoder, chunk_shots, chunk_seed, cache, obs)
                }
            }
        });
        for (i, partial) in results.into_iter().enumerate() {
            cumulative = cumulative.combined(partial.estimate);
            if let Some(c) = &chunks_ctr {
                c.inc();
            }
            if let Some(c) = &shots_ctr {
                c.add(partial.estimate.shots as u64);
            }
            if let Some(c) = &failures_ctr {
                c.add(partial.estimate.failures as u64);
            }
            if let Some(c) = &zero_ctr {
                c.add(partial.decode.zero as u64);
            }
            if let Some(c) = &hit_ctr {
                c.add(partial.decode.cache_hits as u64);
            }
            if let Some(c) = &miss_ctr {
                c.add(partial.decode.cache_misses as u64);
            }
            if let Some(c) = &bp_ctr {
                c.add(partial.decode.bp_converged as u64);
            }
            if let Some(c) = &osd_ctr {
                c.add(partial.decode.osd_calls as u64);
            }
            observer(ChunkProgress {
                chunk: done + i,
                shots: cumulative.shots,
                failures: cumulative.failures,
            });
            if let Some(reason) = budget.adaptive_stop(&cumulative) {
                return (cumulative, reason);
            }
        }
        done += wave;
    }
    (cumulative, LerStopReason::ShotsExhausted)
}

/// One chunk kernel's result: the shot/failure tally plus the batch decode
/// pipeline's deterministic per-chunk stats (populated by the frames kernel;
/// the scalar kernel streams shot by shot and reports the all-zero default).
struct ChunkResult {
    estimate: LogicalErrorEstimate,
    decode: DecodeStats,
}

/// Estimates the logical error rate of `decoder` on `shots` shots sampled from
/// `dem`.
///
/// A shot counts as a failure when the predicted observable flips differ from the true
/// flips in *any* logical observable (the paper's per-shot logical error, covering both
/// X and Z logicals when both experiments' estimates are combined).
///
/// Equivalent to [`estimate_with_budget`] with [`ShotBudget::Fixed`]; see there for
/// the chunking and determinism contract.
pub fn estimate_logical_error_rate(
    dem: &DetectorErrorModel,
    decoder: &dyn Decoder,
    shots: usize,
    seed: u64,
    runtime: &Runtime,
) -> LogicalErrorEstimate {
    estimate_with_budget(
        dem,
        decoder,
        ShotBudget::fixed(shots),
        seed,
        runtime,
        &mut |_| {},
    )
    .0
}

/// Hoisted histogram handles for one scalar-kernel invocation. `None` when the
/// runtime carries no registry, in which case the kernel takes the untimed
/// loop and never reads the clock.
struct ScalarTiming {
    sample: Histogram,
    decode: Histogram,
}

impl ScalarTiming {
    fn from_obs(obs: &Obs) -> Option<ScalarTiming> {
        Some(ScalarTiming {
            sample: obs.histogram("ler.scalar.sample.ns")?,
            decode: obs.histogram("ler.scalar.decode.ns")?,
        })
    }
}

fn run_shots(
    dem: &DetectorErrorModel,
    decoder: &dyn Decoder,
    shots: usize,
    seed: u64,
    obs: &Obs,
) -> ChunkResult {
    let mut sampler = dem.sampler(seed);
    let mut detectors = BitVec::zeros(dem.num_detectors());
    let mut observables = BitVec::zeros(dem.num_observables());
    let mut failures = 0usize;
    let timing = ScalarTiming::from_obs(obs);
    let tracer = obs.tracer();
    if timing.is_some() || tracer.is_some() {
        let chunk_trace = tracer.map(|t| t.span("ler.chunk", "ler"));
        // lint: allow(no-wall-clock) — timing seam: anchors the synthetic
        // per-stage trace blocks only; shot results never depend on the clock.
        let chunk_start = Instant::now();
        // Per-shot stage times are accumulated into chunk-local totals and
        // recorded once per chunk, so the enabled path adds two clock reads
        // per shot and two histogram ops per chunk.
        let mut sample_ns = 0u64;
        let mut decode_ns = 0u64;
        for _ in 0..shots {
            // lint: allow(no-wall-clock) — timing seam: feeds the obs stage
            // histograms and trace stage blocks only; shot results never
            // depend on the clock.
            let t0 = Instant::now();
            sampler.sample_into(&mut detectors, &mut observables);
            // lint: allow(no-wall-clock) — timing seam (same stage outputs).
            let t1 = Instant::now();
            let failed = decoder.decode(&detectors) != observables;
            decode_ns += duration_ns(t1.elapsed());
            sample_ns += duration_ns(t1.duration_since(t0));
            failures += usize::from(failed);
        }
        if shots > 0 {
            if let Some(timing) = &timing {
                timing.sample.record(sample_ns);
                timing.decode.record(decode_ns);
            }
            if let Some(t) = tracer {
                // The per-shot stages interleave, so the timeline shows them
                // as two back-to-back synthetic blocks anchored at the chunk
                // start; they nest under the open `ler.chunk` span.
                t.complete(
                    "ler.scalar.sample",
                    "ler.stage",
                    chunk_start,
                    sample_ns,
                    &[],
                );
                t.complete(
                    "ler.scalar.decode",
                    "ler.stage",
                    chunk_start + Duration::from_nanos(sample_ns),
                    decode_ns,
                    &[],
                );
            }
        }
        if let Some(mut span) = chunk_trace {
            span.arg("shots", shots as u64);
            span.arg("failures", failures as u64);
            span.finish();
        }
    } else {
        for _ in 0..shots {
            sampler.sample_into(&mut detectors, &mut observables);
            if decoder.decode(&detectors) != observables {
                failures += 1;
            }
        }
    }
    ChunkResult {
        estimate: LogicalErrorEstimate { shots, failures },
        decode: DecodeStats::default(),
    }
}

/// Hoisted histogram handles for one frame-kernel invocation; one record per
/// 64-lane block per stage when enabled, nothing when disabled.
struct FrameTiming {
    sample: Histogram,
    transpose: Histogram,
    decode: Histogram,
}

impl FrameTiming {
    fn from_obs(obs: &Obs) -> Option<FrameTiming> {
        Some(FrameTiming {
            sample: obs.histogram("ler.frames.sample.ns")?,
            transpose: obs.histogram("ler.frames.transpose.ns")?,
            decode: obs.histogram("ler.frames.decode.ns")?,
        })
    }
}

fn run_shots_frames(
    dem: &DetectorErrorModel,
    decoder: &dyn Decoder,
    shots: usize,
    seed: u64,
    cache: DecodeCache,
    obs: &Obs,
) -> ChunkResult {
    let mut sampler = dem.sampler(seed);
    let mut det_frames = vec![0u64; dem.num_detectors()];
    let mut obs_frames = vec![0u64; dem.num_observables()];
    let mut det_shots: Vec<BitVec> = Vec::with_capacity(shots);
    let mut obs_shots: Vec<BitVec> = Vec::with_capacity(shots);
    let mut failures = 0usize;
    let mut remaining = shots;
    let timing = FrameTiming::from_obs(obs);
    let tracer = obs.tracer();
    let chunk_trace = tracer.map(|t| t.span("ler.chunk", "ler"));
    // Sample and transpose every 64-lane block first — in the exact
    // `sample_frames` call order of the per-block pipeline, so the RNG
    // stream (and therefore the sampled shots) is unchanged — then decode
    // the whole chunk at once so the syndrome-dedup cache sees the full
    // chunk's duplicate structure.
    while remaining > 0 {
        let lanes = remaining.min(64);
        if timing.is_some() || tracer.is_some() {
            // lint: allow(no-wall-clock) — timing seam: the stamps below feed
            // the obs stage histograms and trace stage blocks only; decode
            // results never depend on the clock.
            let t0 = Instant::now();
            sampler.sample_frames(lanes, &mut det_frames, &mut obs_frames);
            // lint: allow(no-wall-clock) — timing seam (same stage outputs).
            let t1 = Instant::now();
            det_shots.extend(transpose_lane_words(&det_frames, lanes));
            obs_shots.extend(transpose_lane_words(&obs_frames, lanes));
            let transpose_ns = duration_ns(t1.elapsed());
            let sample_ns = duration_ns(t1.duration_since(t0));
            if let Some(timing) = &timing {
                timing.sample.record(sample_ns);
                timing.transpose.record(transpose_ns);
            }
            if let Some(t) = tracer {
                // Truthful per-block stage events from the stamps above; one
                // sample→transpose pair per 64-lane block.
                t.complete(
                    "ler.frames.sample",
                    "ler.stage",
                    t0,
                    sample_ns,
                    &[("lanes", lanes as u64)],
                );
                t.complete("ler.frames.transpose", "ler.stage", t1, transpose_ns, &[]);
            }
        } else {
            sampler.sample_frames(lanes, &mut det_frames, &mut obs_frames);
            det_shots.extend(transpose_lane_words(&det_frames, lanes));
            obs_shots.extend(transpose_lane_words(&obs_frames, lanes));
        }
        remaining -= lanes;
    }
    let (predictions, decode) = if timing.is_some() || tracer.is_some() {
        // lint: allow(no-wall-clock) — timing seam (same stage outputs).
        let t2 = Instant::now();
        let result = decode_shots_cached(decoder, &det_shots, cache);
        let decode_ns = duration_ns(t2.elapsed());
        if let Some(timing) = &timing {
            timing.decode.record(decode_ns);
        }
        if let Some(t) = tracer {
            // One chunk-wide decode block: the cache works across lane
            // blocks, so decode is no longer a per-block stage.
            t.complete("ler.frames.decode", "ler.stage", t2, decode_ns, &[]);
        }
        result
    } else {
        decode_shots_cached(decoder, &det_shots, cache)
    };
    for (prediction, observed) in predictions.iter().zip(&obs_shots) {
        if prediction != observed {
            failures += 1;
        }
    }
    if let Some(mut span) = chunk_trace {
        span.arg("shots", shots as u64);
        span.arg("failures", failures as u64);
        span.finish();
    }
    ChunkResult {
        estimate: LogicalErrorEstimate { shots, failures },
        decode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BpOsdDecoder;
    use prophunt_circuit::schedule::ScheduleSpec;
    use prophunt_circuit::{MemoryBasis, MemoryExperiment, NoiseModel};
    use prophunt_qec::surface::rotated_surface_code_with_layout;
    use prophunt_runtime::RuntimeConfig;

    fn surface_dem(d: usize, p: f64, rounds: usize) -> DetectorErrorModel {
        let (code, layout) = rotated_surface_code_with_layout(d);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, rounds, MemoryBasis::Z).unwrap();
        DetectorErrorModel::from_experiment(&exp, &NoiseModel::uniform_depolarizing(p))
    }

    #[test]
    fn estimate_math_is_consistent() {
        let e = LogicalErrorEstimate {
            shots: 200,
            failures: 10,
        };
        assert!((e.rate() - 0.05).abs() < 1e-12);
        assert!(e.standard_error() > 0.0);
        let c = e.combined(LogicalErrorEstimate {
            shots: 100,
            failures: 5,
        });
        assert_eq!(c.shots, 300);
        assert_eq!(c.failures, 15);
    }

    #[test]
    fn zero_shot_estimates_are_pinned_to_zero_not_nan() {
        let empty = LogicalErrorEstimate::ZERO;
        assert_eq!(empty.rate(), 0.0);
        assert_eq!(empty.standard_error(), 0.0);
        assert_eq!(empty.relative_standard_error(), f64::INFINITY);
        // Combining with the empty estimate is the identity.
        let e = LogicalErrorEstimate {
            shots: 50,
            failures: 3,
        };
        assert_eq!(empty.combined(e), e);
        assert_eq!(e.combined(empty), e);
        assert_eq!(empty.combined(empty), empty);
    }

    #[test]
    fn zero_failure_estimates_have_zero_error_but_infinite_rse() {
        let e = LogicalErrorEstimate {
            shots: 1000,
            failures: 0,
        };
        assert_eq!(e.rate(), 0.0);
        assert_eq!(e.standard_error(), 0.0);
        assert_eq!(e.relative_standard_error(), f64::INFINITY);
        // All-failures is the other degenerate binomial endpoint: p = 1, se = 0.
        let all = LogicalErrorEstimate {
            shots: 40,
            failures: 40,
        };
        assert_eq!(all.rate(), 1.0);
        assert_eq!(all.standard_error(), 0.0);
        assert_eq!(all.relative_standard_error(), 0.0);
    }

    #[test]
    fn relative_standard_error_matches_definition_in_the_regular_case() {
        let e = LogicalErrorEstimate {
            shots: 400,
            failures: 100,
        };
        let expected = e.standard_error() / e.rate();
        assert!((e.relative_standard_error() - expected).abs() < 1e-15);
        assert!(expected.is_finite() && expected > 0.0);
    }

    #[test]
    fn multithreaded_estimate_matches_shot_count_and_is_reasonable() {
        let dem = surface_dem(3, 3e-3, 3);
        let decoder = BpOsdDecoder::new(&dem);
        let runtime = Runtime::new(RuntimeConfig::new(4, 64, 0));
        let estimate = estimate_logical_error_rate(&dem, &decoder, 400, 7, &runtime);
        assert_eq!(estimate.shots, 400);
        // d=3 at p = 0.3% should fail well below 10% of shots.
        assert!(estimate.rate() < 0.1, "rate {}", estimate.rate());
    }

    #[test]
    fn higher_physical_error_rate_gives_higher_logical_error_rate() {
        let low = surface_dem(3, 1e-3, 3);
        let high = surface_dem(3, 2e-2, 3);
        let dec_low = BpOsdDecoder::new(&low);
        let dec_high = BpOsdDecoder::new(&high);
        let runtime = Runtime::new(RuntimeConfig::new(2, 64, 0));
        let e_low = estimate_logical_error_rate(&low, &dec_low, 300, 13, &runtime);
        let e_high = estimate_logical_error_rate(&high, &dec_high, 300, 13, &runtime);
        assert!(e_high.failures > e_low.failures);
    }

    #[test]
    fn failure_counts_are_identical_across_thread_counts() {
        let dem = surface_dem(3, 8e-3, 3);
        let decoder = BpOsdDecoder::new(&dem);
        let reference = estimate_logical_error_rate(
            &dem,
            &decoder,
            500,
            42,
            &Runtime::new(RuntimeConfig::new(1, 64, 0)),
        );
        assert!(reference.failures > 0, "want a nonzero count to compare");
        for threads in [2, 8] {
            let estimate = estimate_logical_error_rate(
                &dem,
                &decoder,
                500,
                42,
                &Runtime::new(RuntimeConfig::new(threads, 64, 0)),
            );
            assert_eq!(estimate.failures, reference.failures, "threads = {threads}");
            assert_eq!(estimate.shots, reference.shots);
        }
    }

    #[test]
    fn zero_budget_returns_the_empty_estimate() {
        let dem = surface_dem(3, 8e-3, 2);
        let decoder = BpOsdDecoder::new(&dem);
        let runtime = Runtime::new(RuntimeConfig::new(2, 64, 0));
        let (est, stop) = estimate_with_budget(
            &dem,
            &decoder,
            ShotBudget::fixed(0),
            1,
            &runtime,
            &mut |_| panic!("no chunks expected"),
        );
        assert_eq!(est, LogicalErrorEstimate::ZERO);
        assert_eq!(stop, LerStopReason::ShotsExhausted);
    }

    #[test]
    fn max_failures_budget_stops_at_the_chunk_prefix_of_the_fixed_run() {
        let dem = surface_dem(3, 2e-2, 3);
        let decoder = BpOsdDecoder::new(&dem);
        let runtime = Runtime::new(RuntimeConfig::new(4, 32, 0));
        // Reference: a fixed run, recording the cumulative tally after each chunk.
        let mut prefix = Vec::new();
        let (full, stop) = estimate_with_budget(
            &dem,
            &decoder,
            ShotBudget::fixed(960),
            5,
            &runtime,
            &mut |p| prefix.push(p),
        );
        assert_eq!(stop, LerStopReason::ShotsExhausted);
        assert_eq!(prefix.len(), 30);
        assert!(full.failures >= 8, "need failures, got {}", full.failures);
        let max_failures = full.failures / 2;
        let expected = prefix
            .iter()
            .find(|p| p.failures >= max_failures)
            .expect("threshold below the total must be crossed");
        let (adaptive, stop) = estimate_with_budget(
            &dem,
            &decoder,
            ShotBudget::MaxFailures {
                max_failures,
                max_shots: 960,
            },
            5,
            &runtime,
            &mut |_| {},
        );
        assert_eq!(stop, LerStopReason::MaxFailuresReached);
        assert_eq!(adaptive.shots, expected.shots);
        assert_eq!(adaptive.failures, expected.failures);
        assert!(adaptive.shots < full.shots, "must stop early");
    }

    #[test]
    fn adaptive_budgets_fall_back_to_the_shot_cap() {
        let dem = surface_dem(3, 1e-3, 2);
        let decoder = BpOsdDecoder::new(&dem);
        let runtime = Runtime::new(RuntimeConfig::new(2, 64, 0));
        let (est, stop) = estimate_with_budget(
            &dem,
            &decoder,
            ShotBudget::MaxFailures {
                max_failures: usize::MAX,
                max_shots: 128,
            },
            3,
            &runtime,
            &mut |_| {},
        );
        assert_eq!(stop, LerStopReason::ShotsExhausted);
        assert_eq!(est.shots, 128);
        // An unreachable RSE target also runs to the cap.
        let (est, stop) = estimate_with_budget(
            &dem,
            &decoder,
            ShotBudget::TargetRse {
                target: 1e-9,
                max_shots: 128,
            },
            3,
            &runtime,
            &mut |_| {},
        );
        assert_eq!(stop, LerStopReason::ShotsExhausted);
        assert_eq!(est.shots, 128);
    }

    #[test]
    fn target_rse_budget_stops_once_the_estimate_is_precise_enough() {
        let dem = surface_dem(3, 2e-2, 3);
        let decoder = BpOsdDecoder::new(&dem);
        let runtime = Runtime::new(RuntimeConfig::new(4, 32, 0));
        let budget = ShotBudget::TargetRse {
            target: 0.5,
            max_shots: 100_000,
        };
        let (est, stop) = estimate_with_budget(&dem, &decoder, budget, 9, &runtime, &mut |_| {});
        assert_eq!(stop, LerStopReason::TargetRseReached);
        assert!(est.relative_standard_error() <= 0.5);
        assert!(est.shots < 100_000, "must stop well before the cap");
        // The decision is taken at chunk granularity: stopping exactly at a chunk
        // boundary means the previous chunk's tally was still above target.
        assert_eq!(est.shots % 32, 0);
    }

    #[test]
    fn engine_names_round_trip_and_default_is_scalar() {
        assert_eq!(Engine::default(), Engine::Scalar);
        for engine in [Engine::Scalar, Engine::Frames] {
            assert_eq!(Engine::parse(engine.as_str()), Some(engine));
            assert_eq!(engine.as_str().parse::<Engine>(), Ok(engine));
            assert_eq!(engine.to_string(), engine.as_str());
        }
        assert_eq!(Engine::parse("vectorized"), None);
        assert!("vectorized".parse::<Engine>().is_err());
    }

    #[test]
    fn frame_engine_failure_counts_are_identical_across_thread_counts() {
        let dem = surface_dem(3, 8e-3, 3);
        let decoder = BpOsdDecoder::new(&dem);
        let run = |threads| {
            estimate_with_budget_engine(
                &dem,
                &decoder,
                ShotBudget::fixed(500),
                42,
                Engine::Frames,
                &Runtime::new(RuntimeConfig::new(threads, 64, 0)),
                &mut |_| {},
            )
            .0
        };
        let reference = run(1);
        assert_eq!(reference.shots, 500);
        assert!(reference.failures > 0, "want a nonzero count to compare");
        for threads in [2, 8] {
            assert_eq!(run(threads), reference, "threads = {threads}");
        }
    }

    #[test]
    fn frame_engine_handles_partial_lane_blocks_and_chunk_tails() {
        // 150 shots at chunk 64 → chunks of 64, 64, 22; the last chunk exercises a
        // partial (22-lane) frame block.
        let dem = surface_dem(3, 2e-2, 3);
        let decoder = BpOsdDecoder::new(&dem);
        let runtime = Runtime::new(RuntimeConfig::new(2, 64, 0));
        let (est, stop) = estimate_with_budget_engine(
            &dem,
            &decoder,
            ShotBudget::fixed(150),
            11,
            Engine::Frames,
            &runtime,
            &mut |_| {},
        );
        assert_eq!(stop, LerStopReason::ShotsExhausted);
        assert_eq!(est.shots, 150);
        assert!(est.failures > 0, "p = 2% on d3 should fail sometimes");
        assert!(est.rate() < 0.5, "rate {}", est.rate());
    }

    #[test]
    fn both_engines_estimate_comparable_rates_on_the_same_model() {
        // Different RNG stream layouts mean the counts differ, but both engines
        // sample the same distribution: at p = 2% on d3 their rates must agree
        // within generous Monte-Carlo error.
        let dem = surface_dem(3, 2e-2, 3);
        let decoder = BpOsdDecoder::new(&dem);
        let runtime = Runtime::new(RuntimeConfig::new(4, 64, 0));
        let run = |engine| {
            estimate_with_budget_engine(
                &dem,
                &decoder,
                ShotBudget::fixed(2000),
                21,
                engine,
                &runtime,
                &mut |_| {},
            )
            .0
        };
        let scalar = run(Engine::Scalar);
        let frames = run(Engine::Frames);
        assert_eq!(scalar.shots, frames.shots);
        let tolerance = 5.0 * (scalar.standard_error() + frames.standard_error());
        assert!(
            (scalar.rate() - frames.rate()).abs() <= tolerance,
            "scalar {} vs frames {} (tolerance {tolerance})",
            scalar.rate(),
            frames.rate(),
        );
    }

    #[test]
    fn frame_engine_adaptive_stop_matches_its_own_fixed_chunk_prefix() {
        let dem = surface_dem(3, 2e-2, 3);
        let decoder = BpOsdDecoder::new(&dem);
        let runtime = Runtime::new(RuntimeConfig::new(4, 32, 0));
        let mut prefix = Vec::new();
        let (full, _) = estimate_with_budget_engine(
            &dem,
            &decoder,
            ShotBudget::fixed(960),
            5,
            Engine::Frames,
            &runtime,
            &mut |p| prefix.push(p),
        );
        assert!(full.failures >= 8, "need failures, got {}", full.failures);
        let max_failures = full.failures / 2;
        let expected = prefix
            .iter()
            .find(|p| p.failures >= max_failures)
            .expect("threshold below the total must be crossed");
        let (adaptive, stop) = estimate_with_budget_engine(
            &dem,
            &decoder,
            ShotBudget::MaxFailures {
                max_failures,
                max_shots: 960,
            },
            5,
            Engine::Frames,
            &runtime,
            &mut |_| {},
        );
        assert_eq!(stop, LerStopReason::MaxFailuresReached);
        assert_eq!(adaptive.shots, expected.shots);
        assert_eq!(adaptive.failures, expected.failures);
    }

    #[test]
    fn budget_helpers_expose_caps_and_names() {
        assert_eq!(ShotBudget::fixed(10).max_shots(), 10);
        assert_eq!(
            ShotBudget::MaxFailures {
                max_failures: 1,
                max_shots: 7
            }
            .max_shots(),
            7
        );
        assert_eq!(
            ShotBudget::TargetRse {
                target: 0.1,
                max_shots: 9
            }
            .max_shots(),
            9
        );
        assert_eq!(LerStopReason::ShotsExhausted.as_str(), "shots_exhausted");
        assert_eq!(LerStopReason::MaxFailuresReached.as_str(), "max_failures");
        assert_eq!(LerStopReason::TargetRseReached.as_str(), "target_rse");
    }

    #[test]
    fn ler_counters_are_thread_count_invariant_and_stage_timings_recorded() {
        let dem = surface_dem(3, 0.02, 2);
        let decoder = BpOsdDecoder::new(&dem);
        // An early-stopping budget: waves overshoot the stop point at high
        // thread counts, which is exactly the case the counter contract has
        // to survive.
        let budget = ShotBudget::MaxFailures {
            max_failures: 4,
            max_shots: 2048,
        };
        for engine in [Engine::Scalar, Engine::Frames] {
            let mut reference = None;
            for threads in [1, 2, 8] {
                let obs = Obs::enabled();
                let runtime = Runtime::with_obs(RuntimeConfig::new(threads, 16, 0), obs.clone());
                let (estimate, _) = estimate_with_budget_engine(
                    &dem,
                    &decoder,
                    budget,
                    5,
                    engine,
                    &runtime,
                    &mut |_| {},
                );
                let snap = obs.snapshot().unwrap();
                assert_eq!(snap.counter("ler.shots"), estimate.shots as u64);
                assert_eq!(snap.counter("ler.failures"), estimate.failures as u64);
                assert!(snap.counter("ler.chunks") > 0);
                let counters = snap.counters.clone();
                match &reference {
                    None => reference = Some(counters),
                    Some(r) => assert_eq!(&counters, r, "{engine:?} at {threads} threads"),
                }
                let stages: &[&str] = match engine {
                    Engine::Scalar => &["ler.scalar.sample.ns", "ler.scalar.decode.ns"],
                    Engine::Frames => &[
                        "ler.frames.sample.ns",
                        "ler.frames.transpose.ns",
                        "ler.frames.decode.ns",
                    ],
                };
                for stage in stages {
                    assert!(
                        snap.histogram(stage).is_some_and(|h| h.count > 0),
                        "{stage} empty"
                    );
                }
            }
        }
        // A plain runtime records nothing and returns the same estimate.
        let plain = Runtime::new(RuntimeConfig::new(2, 16, 0));
        let (estimate, _) = estimate_with_budget_engine(
            &dem,
            &decoder,
            budget,
            5,
            Engine::Scalar,
            &plain,
            &mut |_| {},
        );
        assert!(estimate.shots > 0);
    }

    #[test]
    fn tracing_records_stage_events_without_changing_estimates() {
        let dem = surface_dem(3, 0.02, 2);
        let decoder = BpOsdDecoder::new(&dem);
        let budget = ShotBudget::fixed(200);
        for engine in [Engine::Scalar, Engine::Frames] {
            let plain = Runtime::new(RuntimeConfig::new(2, 16, 0));
            let (baseline, _) =
                estimate_with_budget_engine(&dem, &decoder, budget, 7, engine, &plain, &mut |_| {});
            // Tracer-only Obs: no registry, so histograms stay off and the
            // trace path has to carry the instrumented branch alone.
            let tracer = prophunt_obs::Tracer::new();
            let obs = Obs::disabled().with_tracer(tracer.clone());
            let traced = Runtime::with_obs(RuntimeConfig::new(2, 16, 0), obs);
            let (estimate, _) = estimate_with_budget_engine(
                &dem,
                &decoder,
                budget,
                7,
                engine,
                &traced,
                &mut |_| {},
            );
            assert_eq!(estimate, baseline, "{engine:?}: tracing changed the result");
            let log = tracer.drain();
            let chunk_spans = log.events.iter().filter(|e| e.name == "ler.chunk").count();
            assert!(chunk_spans > 0, "{engine:?}: no ler.chunk spans");
            let stages: &[&str] = match engine {
                Engine::Scalar => &["ler.scalar.sample", "ler.scalar.decode"],
                Engine::Frames => &[
                    "ler.frames.sample",
                    "ler.frames.transpose",
                    "ler.frames.decode",
                ],
            };
            for stage in stages {
                let n = log.events.iter().filter(|e| e.name == *stage).count();
                assert!(n > 0, "{engine:?}: no {stage} events");
            }
            // Stage events nest under their chunk span on the same lane.
            let chunk_ids: std::collections::HashSet<u64> = log
                .events
                .iter()
                .filter(|e| e.name == "ler.chunk")
                .map(|e| e.id)
                .collect();
            for e in log.events.iter().filter(|e| e.cat == "ler.stage") {
                assert!(chunk_ids.contains(&e.parent), "stage event orphaned");
            }
        }
    }
}
