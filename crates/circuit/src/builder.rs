//! Expansion of an abstract schedule into a full memory-experiment circuit with
//! detectors and logical observables.

use crate::ops::{Circuit, Op};
use crate::schedule::{ScheduleSpec, StabilizerId};
use crate::CircuitError;
use prophunt_qec::{CssCode, StabilizerKind};

/// The basis of a memory experiment: which logical observable is protected and measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryBasis {
    /// Data qubits initialised and finally measured in the Z basis; protects `L_Z`.
    Z,
    /// Data qubits initialised and finally measured in the X basis; protects `L_X`.
    X,
}

impl MemoryBasis {
    /// The stabilizer kind whose outcomes are deterministic in the first round and
    /// reconstructible from the final data measurement.
    pub fn deterministic_kind(self) -> StabilizerKind {
        match self {
            MemoryBasis::Z => StabilizerKind::Z,
            MemoryBasis::X => StabilizerKind::X,
        }
    }
}

/// Identifies what a detector compares, for diagnostics and for mapping circuit-level
/// structures back to code-level ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DetectorInfo {
    /// The stabilizer whose measurements this detector compares.
    pub stabilizer: StabilizerId,
    /// The syndrome-measurement round of the *later* measurement involved. The detector
    /// comparing the last round to the final data measurement uses `round == rounds`.
    pub round: usize,
}

/// A complete syndrome-measurement memory experiment: the physical circuit plus the
/// definitions of its detectors and logical observables in terms of measurement indices.
///
/// Built by [`MemoryExperiment::build`]; consumed by
/// [`DetectorErrorModel::from_experiment`](crate::dem::DetectorErrorModel::from_experiment).
#[derive(Debug, Clone)]
pub struct MemoryExperiment {
    /// The physical circuit.
    pub circuit: Circuit,
    /// Each detector as a set of measurement indices whose parity it records.
    pub detectors: Vec<Vec<usize>>,
    /// Each logical observable as a set of measurement indices whose parity it records.
    pub observables: Vec<Vec<usize>>,
    /// Metadata describing each detector.
    pub detector_info: Vec<DetectorInfo>,
    /// Number of data qubits (`code.n()`); ancilla `s` is qubit `num_data + s`.
    pub num_data: usize,
    /// Number of syndrome-measurement rounds.
    pub rounds: usize,
    /// The memory basis.
    pub basis: MemoryBasis,
    /// The schedule the experiment was built from.
    pub schedule: ScheduleSpec,
}

impl MemoryExperiment {
    /// Builds a `rounds`-round memory experiment for `code` using `schedule`.
    ///
    /// The circuit is, per round: ancilla (re)preparation, the schedule's CNOT layers,
    /// then ancilla measurement; data qubits are prepared before the first round and
    /// measured transversally after the last. Detectors compare consecutive measurements
    /// of the same stabilizer (plus the deterministic first-round and final-round
    /// comparisons of the basis-matching stabilizer kind), and the observables are the
    /// basis-matching logical operators evaluated on the final data measurement.
    ///
    /// # Errors
    ///
    /// Returns any [`CircuitError`] raised by schedule validation.
    pub fn build(
        code: &CssCode,
        schedule: &ScheduleSpec,
        rounds: usize,
        basis: MemoryBasis,
    ) -> Result<MemoryExperiment, CircuitError> {
        assert!(rounds >= 1, "a memory experiment needs at least one round");
        schedule.validate(code)?;
        let layers = schedule.cnot_layers()?;
        let n = code.n();
        let num_stabs = code.num_stabilizers();
        let num_qubits = n + num_stabs;
        let ancilla = |s: StabilizerId| n + s;

        let mut circuit = Circuit::new(num_qubits);
        // measurement index bookkeeping
        let mut meas_counter = 0usize;
        let mut stab_meas: Vec<Vec<usize>> = vec![Vec::with_capacity(rounds); num_stabs];
        let mut data_meas: Vec<usize> = vec![usize::MAX; n];

        for round in 0..rounds {
            // Preparation moment: ancillas every round; data only before the first round.
            let mut prep = Vec::new();
            if round == 0 {
                for q in 0..n {
                    prep.push(match basis {
                        MemoryBasis::Z => Op::ResetZ(q),
                        MemoryBasis::X => Op::ResetX(q),
                    });
                }
            }
            for s in 0..num_stabs {
                prep.push(match schedule.kind_of(s) {
                    StabilizerKind::X => Op::ResetX(ancilla(s)),
                    StabilizerKind::Z => Op::ResetZ(ancilla(s)),
                });
            }
            circuit.push_moment(prep);

            // CNOT layers.
            for layer in &layers {
                let ops = layer
                    .iter()
                    .map(|&(s, q)| match schedule.kind_of(s) {
                        StabilizerKind::X => Op::Cnot(ancilla(s), q),
                        StabilizerKind::Z => Op::Cnot(q, ancilla(s)),
                    })
                    .collect();
                circuit.push_moment(ops);
            }

            // Ancilla measurement moment.
            let mut meas = Vec::new();
            for s in 0..num_stabs {
                meas.push(match schedule.kind_of(s) {
                    StabilizerKind::X => Op::MeasureX(ancilla(s)),
                    StabilizerKind::Z => Op::MeasureZ(ancilla(s)),
                });
                stab_meas[s].push(meas_counter);
                meas_counter += 1;
            }
            let _ = round;
            circuit.push_moment(meas);
        }

        // Final transversal data measurement.
        let mut final_meas = Vec::new();
        for q in 0..n {
            final_meas.push(match basis {
                MemoryBasis::Z => Op::MeasureZ(q),
                MemoryBasis::X => Op::MeasureX(q),
            });
            data_meas[q] = meas_counter;
            meas_counter += 1;
        }
        circuit.push_moment(final_meas);
        debug_assert_eq!(meas_counter, circuit.num_measurements());

        // Detectors.
        let deterministic = basis.deterministic_kind();
        let mut detectors = Vec::new();
        let mut detector_info = Vec::new();
        for s in 0..num_stabs {
            let (kind, index) = schedule.kind_index(s);
            // First-round detector only for the deterministic kind.
            if kind == deterministic {
                detectors.push(vec![stab_meas[s][0]]);
                detector_info.push(DetectorInfo {
                    stabilizer: s,
                    round: 0,
                });
            }
            // Consecutive-round comparisons.
            for r in 1..rounds {
                detectors.push(vec![stab_meas[s][r - 1], stab_meas[s][r]]);
                detector_info.push(DetectorInfo {
                    stabilizer: s,
                    round: r,
                });
            }
            // Final comparison against the reconstructed stabilizer value.
            if kind == deterministic {
                let mut members = vec![stab_meas[s][rounds - 1]];
                for q in code.stabilizer_support(kind, index) {
                    members.push(data_meas[q]);
                }
                detectors.push(members);
                detector_info.push(DetectorInfo {
                    stabilizer: s,
                    round: rounds,
                });
            }
        }

        // Observables: the basis-matching logicals evaluated on the final data measurement.
        let logicals = match basis {
            MemoryBasis::Z => code.lz(),
            MemoryBasis::X => code.lx(),
        };
        let observables: Vec<Vec<usize>> = logicals
            .rows_iter()
            .map(|row| row.ones().map(|q| data_meas[q]).collect())
            .collect();

        Ok(MemoryExperiment {
            circuit,
            detectors,
            observables,
            detector_info,
            num_data: n,
            rounds,
            basis,
            schedule: schedule.clone(),
        })
    }

    /// Returns the number of detectors.
    pub fn num_detectors(&self) -> usize {
        self.detectors.len()
    }

    /// Returns the number of logical observables.
    pub fn num_observables(&self) -> usize {
        self.observables.len()
    }

    /// Returns the stabilizer whose ancilla is physical qubit `q`, if `q` is an ancilla.
    pub fn stabilizer_of_qubit(&self, q: usize) -> Option<StabilizerId> {
        (q >= self.num_data).then(|| q - self.num_data)
    }

    /// Returns `true` if physical qubit `q` is a data qubit.
    pub fn is_data_qubit(&self, q: usize) -> bool {
        q < self.num_data
    }

    /// Returns the syndrome-measurement round that contains circuit moment `m`, or `None`
    /// for the final data-measurement moment.
    pub fn round_of_moment(&self, m: usize) -> Option<usize> {
        let moments_per_round = (self.circuit.num_moments() - 1) / self.rounds;
        let r = m / moments_per_round;
        (r < self.rounds).then_some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleSpec;
    use prophunt_qec::small::quantum_repetition_code;
    use prophunt_qec::surface::rotated_surface_code_with_layout;

    #[test]
    fn d3_z_memory_counts() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
        // 17 qubits: 9 data + 8 ancillas.
        assert_eq!(exp.circuit.num_qubits(), 17);
        // Measurements: 8 ancillas x 3 rounds + 9 data.
        assert_eq!(exp.circuit.num_measurements(), 8 * 3 + 9);
        // Detectors: Z stabs get rounds+1 = 4 each, X stabs get rounds-1 = 2 each.
        assert_eq!(exp.num_detectors(), 4 * 4 + 4 * 2);
        assert_eq!(exp.num_observables(), 1);
        // CNOT count: 2 qubits * weight sum per round.
        assert_eq!(exp.circuit.num_cnots(), 24 * 3);
        assert_eq!(exp.circuit.cnot_depth(), 4 * 3);
    }

    #[test]
    fn x_memory_swaps_roles() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let z = MemoryExperiment::build(&code, &schedule, 2, MemoryBasis::Z).unwrap();
        let x = MemoryExperiment::build(&code, &schedule, 2, MemoryBasis::X).unwrap();
        assert_eq!(z.num_detectors(), x.num_detectors());
        // Observable support sizes follow the logicals: both are weight 3 for d=3.
        assert_eq!(z.observables[0].len(), 3);
        assert_eq!(x.observables[0].len(), 3);
        assert_ne!(z.circuit, x.circuit);
    }

    #[test]
    fn detector_membership_indices_are_valid() {
        let (code, _layout) = rotated_surface_code_with_layout(5);
        let schedule = ScheduleSpec::coloration(&code);
        let exp = MemoryExperiment::build(&code, &schedule, 5, MemoryBasis::Z).unwrap();
        let num_meas = exp.circuit.num_measurements();
        for det in &exp.detectors {
            assert!(!det.is_empty());
            assert!(det.iter().all(|&m| m < num_meas));
        }
        for obs in &exp.observables {
            assert!(obs.iter().all(|&m| m < num_meas));
        }
        assert_eq!(exp.detector_info.len(), exp.num_detectors());
    }

    #[test]
    fn repetition_code_experiment_has_only_z_checks() {
        let code = quantum_repetition_code(5);
        let schedule = ScheduleSpec::coloration(&code);
        let exp = MemoryExperiment::build(&code, &schedule, 2, MemoryBasis::Z).unwrap();
        // 4 Z stabilizers, each with rounds+1 = 3 detectors.
        assert_eq!(exp.num_detectors(), 4 * 3);
        assert_eq!(exp.num_observables(), 1);
    }

    #[test]
    fn ancilla_qubit_mapping_roundtrips() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, 1, MemoryBasis::Z).unwrap();
        assert!(exp.is_data_qubit(0));
        assert!(!exp.is_data_qubit(9));
        assert_eq!(exp.stabilizer_of_qubit(9), Some(0));
        assert_eq!(exp.stabilizer_of_qubit(16), Some(7));
        assert_eq!(exp.stabilizer_of_qubit(3), None);
    }

    #[test]
    fn round_of_moment_is_monotone() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let exp = MemoryExperiment::build(&code, &schedule, 3, MemoryBasis::Z).unwrap();
        let mut last = 0;
        for m in 0..exp.circuit.num_moments() - 1 {
            let r = exp.round_of_moment(m).unwrap();
            assert!(r >= last && r < 3);
            last = r;
        }
        assert_eq!(exp.round_of_moment(exp.circuit.num_moments() - 1), None);
    }
}
