//! [`SearchJob`]: portfolio schedule search as a typed session job.

use crate::spec::ExperimentSpec;
use prophunt_search::{SearchResult, StrategyKind};
use std::time::Duration;

/// A strategy-portfolio search job: race N seeded [`StrategyKind`] instances
/// over the spec's code and starting schedule in synchronized rounds, sharing
/// the incumbent deterministically (see [`prophunt_search::Portfolio`]).
///
/// The spec contributes the code, the starting schedule, the noise model the
/// MaxSAT-descent arm analyses, and the syndrome-measurement round count; the
/// job contributes the portfolio shape (strategy mix, size, rounds) and the
/// per-round effort knobs.
#[derive(Debug, Clone)]
pub struct SearchJob {
    /// The experiment whose schedule is searched.
    pub spec: ExperimentSpec,
    /// The strategy mix; instance slot `i` runs `strategies[i % len]`.
    pub strategies: Vec<StrategyKind>,
    /// Number of strategy instances raced in parallel.
    pub portfolio_size: usize,
    /// Number of synchronized portfolio rounds.
    pub rounds: usize,
    /// Mutation proposals per instance per round (local-search arms).
    pub proposals_per_round: usize,
    /// Subgraph-expansion samples per MaxSAT-descent iteration.
    pub samples_per_iteration: usize,
    /// Wall-clock budget per MaxSAT solve.
    pub maxsat_budget: Duration,
    /// Seed override; `None` uses the session runtime's seed.
    pub seed: Option<u64>,
    /// Label used in events (default: the code name).
    pub label: Option<String>,
}

impl SearchJob {
    /// Creates a job with the quick-profile defaults: the full built-in
    /// strategy mix, one instance per strategy, 8 rounds, 24 proposals per
    /// round, 20 MaxSAT samples per iteration.
    pub fn new(spec: ExperimentSpec) -> SearchJob {
        SearchJob {
            spec,
            strategies: StrategyKind::ALL.to_vec(),
            portfolio_size: StrategyKind::ALL.len(),
            rounds: 8,
            proposals_per_round: 24,
            samples_per_iteration: 20,
            maxsat_budget: Duration::from_secs(20),
            seed: None,
            label: None,
        }
    }

    /// Sets the strategy mix; also grows the portfolio to at least one
    /// instance per listed strategy.
    pub fn with_strategies(mut self, strategies: Vec<StrategyKind>) -> SearchJob {
        self.portfolio_size = self.portfolio_size.max(strategies.len());
        self.strategies = strategies;
        self
    }

    /// Sets the number of parallel strategy instances.
    pub fn with_portfolio_size(mut self, portfolio_size: usize) -> SearchJob {
        self.portfolio_size = portfolio_size;
        self
    }

    /// Sets the number of synchronized rounds.
    pub fn with_rounds(mut self, rounds: usize) -> SearchJob {
        self.rounds = rounds;
        self
    }

    /// Sets the per-instance, per-round mutation-proposal budget.
    pub fn with_proposals(mut self, proposals_per_round: usize) -> SearchJob {
        self.proposals_per_round = proposals_per_round;
        self
    }

    /// Sets the MaxSAT-descent per-iteration sample count.
    pub fn with_samples(mut self, samples: usize) -> SearchJob {
        self.samples_per_iteration = samples;
        self
    }

    /// Overrides the seed (default: the session runtime's seed).
    pub fn with_seed(mut self, seed: u64) -> SearchJob {
        self.seed = Some(seed);
        self
    }

    /// Sets the event label.
    pub fn with_label(mut self, label: impl Into<String>) -> SearchJob {
        self.label = Some(label.into());
        self
    }

    /// The effective label.
    pub fn label(&self) -> &str {
        self.label
            .as_deref()
            .unwrap_or_else(|| self.spec.code().name())
    }
}

/// The result of a [`SearchJob`].
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The portfolio's full result: final incumbent with provenance plus every
    /// per-round record.
    pub result: SearchResult,
    /// Why the job stopped.
    pub stop: crate::job::StopReason,
    /// The seed the run was computed with (reproduces the result with
    /// [`SearchOutcome::chunk_size`] at any thread count).
    pub seed: u64,
    /// The deterministic chunk size.
    pub chunk_size: usize,
    /// Wall-clock duration of the job.
    pub wall: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d3_spec() -> ExperimentSpec {
        ExperimentSpec::builder()
            .code_family("surface:3")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn defaults_cover_the_full_strategy_mix() {
        let job = SearchJob::new(d3_spec());
        assert_eq!(job.strategies, StrategyKind::ALL.to_vec());
        assert_eq!(job.portfolio_size, 4);
        assert_eq!(job.label(), "surface_d3");
    }

    #[test]
    fn with_strategies_grows_the_portfolio_to_fit() {
        let job = SearchJob::new(d3_spec())
            .with_portfolio_size(2)
            .with_strategies(vec![
                StrategyKind::Annealing,
                StrategyKind::Beam,
                StrategyKind::HillClimb,
            ]);
        assert_eq!(job.portfolio_size, 3, "portfolio must fit the mix");
        let job = job.with_portfolio_size(6).with_label("probe");
        assert_eq!(job.portfolio_size, 6);
        assert_eq!(job.label(), "probe");
    }
}
