//! Product constructions of quantum LDPC codes.
//!
//! Three families are provided:
//!
//! * [`hypergraph_product`] — the Tillich–Zémor hypergraph product of two classical codes.
//! * [`generalized_bicycle`] — two-block codes over a cyclic group algebra; these are
//!   exactly lifted-product codes with a `1 × 2` base matrix, and serve as this
//!   reproduction's "LP code" instances.
//! * [`bivariate_bicycle`] — two-block codes over the product of two cyclic groups
//!   (the family of IBM's recent high-threshold qLDPC memories); together with
//!   [`generalized_bicycle`] these stand in for the paper's Random Quantum Tanner codes
//!   (see the crate map in `README.md` for the substitution rationale).
//!
//! All constructors validate CSS commutation by construction of a [`CssCode`].

use crate::classical::ClassicalCode;
use crate::css::CssCode;
use prophunt_gf2::BitMatrix;

/// Returns the Kronecker (tensor) product `a ⊗ b` over GF(2).
pub fn kronecker(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    let rows = a.num_rows() * b.num_rows();
    let cols = a.num_cols() * b.num_cols();
    let mut out = BitMatrix::zeros(rows, cols);
    for ar in 0..a.num_rows() {
        for ac in a.row(ar).ones() {
            for br in 0..b.num_rows() {
                for bc in b.row(br).ones() {
                    out.set(ar * b.num_rows() + br, ac * b.num_cols() + bc, true);
                }
            }
        }
    }
    out
}

/// Constructs the hypergraph product of two classical codes.
///
/// With `H_1` of shape `r_1 × n_1` and `H_2` of shape `r_2 × n_2`:
///
/// ```text
/// H_X = [ H_1 ⊗ I_{n_2} | I_{r_1} ⊗ H_2ᵀ ]
/// H_Z = [ I_{n_1} ⊗ H_2 | H_1ᵀ ⊗ I_{r_2} ]
/// ```
///
/// giving a `[[n_1 n_2 + r_1 r_2, k_1 k_2 + k_1ᵀ k_2ᵀ, min(d_1, d_2)]]` CSS code. The
/// paper notes (Section 3) that hypergraph-product codes have `d_eff = d` for every SM
/// circuit, which makes them a useful control in the experiments.
///
/// # Panics
///
/// Panics if the product encodes zero logical qubits (which cannot happen for codes with
/// `k ≥ 1` factors).
pub fn hypergraph_product(c1: &ClassicalCode, c2: &ClassicalCode, name: &str) -> CssCode {
    let h1 = c1.parity_check();
    let h2 = c2.parity_check();
    let (r1, n1) = (h1.num_rows(), h1.num_cols());
    let (r2, n2) = (h2.num_rows(), h2.num_cols());
    let hx = kronecker(h1, &BitMatrix::identity(n2))
        .hstack(&kronecker(&BitMatrix::identity(r1), &h2.transpose()))
        .expect("hypergraph product H_X blocks have matching row counts");
    let hz = kronecker(&BitMatrix::identity(n1), h2)
        .hstack(&kronecker(&h1.transpose(), &BitMatrix::identity(r2)))
        .expect("hypergraph product H_Z blocks have matching row counts");
    CssCode::new(name, hx, hz).expect("hypergraph product is always a valid CSS code")
}

/// Returns the `l × l` circulant matrix whose first row has ones at the given exponents,
/// i.e. the regular representation of the polynomial `sum_i x^{e_i}` in `F_2[x]/(x^l − 1)`.
pub fn circulant(l: usize, exponents: &[usize]) -> BitMatrix {
    let mut m = BitMatrix::zeros(l, l);
    for r in 0..l {
        for &e in exponents {
            m.set(r, (r + e) % l, true);
        }
    }
    m
}

/// Constructs a generalized bicycle (GB) code from two polynomials over `F_2[x]/(x^l − 1)`.
///
/// With `A`, `B` the circulant matrices of the two polynomials:
///
/// ```text
/// H_X = [A | B],    H_Z = [Bᵀ | Aᵀ]
/// ```
///
/// Commutation holds because circulant matrices commute. GB codes are lifted-product
/// codes with a `1 × 2` base matrix over the cyclic group algebra, which is why this
/// reproduction uses them as its "LP code" benchmark instances.
///
/// # Panics
///
/// Panics if the resulting code has `k = 0` (choose different polynomials). Use
/// [`try_generalized_bicycle`] when the polynomials come from user input.
pub fn generalized_bicycle(
    l: usize,
    a_exponents: &[usize],
    b_exponents: &[usize],
    name: &str,
) -> CssCode {
    try_generalized_bicycle(l, a_exponents, b_exponents, name)
        .expect("generalized bicycle polynomials must give k >= 1")
}

/// Fallible variant of [`generalized_bicycle`] for externally supplied polynomials
/// (e.g. a `prophunt code --family generalized_bicycle:...` invocation).
///
/// # Errors
///
/// Returns [`crate::CssCodeError::NoLogicalQubits`] when the chosen polynomials encode
/// zero logical qubits.
pub fn try_generalized_bicycle(
    l: usize,
    a_exponents: &[usize],
    b_exponents: &[usize],
    name: &str,
) -> Result<CssCode, crate::CssCodeError> {
    let a = circulant(l, a_exponents);
    let b = circulant(l, b_exponents);
    let hx = a.hstack(&b).expect("same row count");
    let hz = b
        .transpose()
        .hstack(&a.transpose())
        .expect("same row count");
    CssCode::new(name, hx, hz)
}

/// A monomial `x^i y^j` of the bivariate group algebra `F_2[Z_l × Z_m]`.
pub type BivariateTerm = (usize, usize);

/// Returns the `lm × lm` permutation-sum matrix of a bivariate polynomial
/// `sum_t x^{i_t} y^{j_t}` over `F_2[Z_l × Z_m]`, with group element `(u, v)` indexed as
/// `u * m + v`.
pub fn bivariate_matrix(l: usize, m: usize, terms: &[BivariateTerm]) -> BitMatrix {
    let size = l * m;
    let mut out = BitMatrix::zeros(size, size);
    for u in 0..l {
        for v in 0..m {
            let row = u * m + v;
            for &(i, j) in terms {
                let col = ((u + i) % l) * m + ((v + j) % m);
                // Two identical terms would cancel over GF(2); callers should not repeat
                // terms, but flipping keeps the algebra faithful if they do.
                let cur = out.get(row, col);
                out.set(row, col, !cur);
            }
        }
    }
    out
}

/// Constructs a bivariate bicycle (BB) code from two polynomials over `F_2[Z_l × Z_m]`.
///
/// With `A`, `B` the lifted matrices of the polynomials, `H_X = [A | B]` and
/// `H_Z = [Bᵀ | Aᵀ]`; `n = 2lm`. The well-known `[[72, 12, 6]]` instance is
/// `l = m = 6`, `A = x³ + y + y²`, `B = y³ + x + x²`.
///
/// # Panics
///
/// Panics if the resulting code has `k = 0`. Use [`try_bivariate_bicycle`] when the
/// polynomials come from user input.
pub fn bivariate_bicycle(
    l: usize,
    m: usize,
    a_terms: &[BivariateTerm],
    b_terms: &[BivariateTerm],
    name: &str,
) -> CssCode {
    try_bivariate_bicycle(l, m, a_terms, b_terms, name)
        .expect("bivariate bicycle polynomials must give k >= 1")
}

/// Fallible variant of [`bivariate_bicycle`] for externally supplied polynomials.
///
/// # Errors
///
/// Returns [`crate::CssCodeError::NoLogicalQubits`] when the chosen polynomials encode
/// zero logical qubits.
pub fn try_bivariate_bicycle(
    l: usize,
    m: usize,
    a_terms: &[BivariateTerm],
    b_terms: &[BivariateTerm],
    name: &str,
) -> Result<CssCode, crate::CssCodeError> {
    let a = bivariate_matrix(l, m, a_terms);
    let b = bivariate_matrix(l, m, b_terms);
    let hx = a.hstack(&b).expect("same row count");
    let hz = b
        .transpose()
        .hstack(&a.transpose())
        .expect("same row count");
    CssCode::new(name, hx, hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kronecker_with_identity_is_block_diagonal() {
        let a = BitMatrix::from_rows_u8(&[&[1, 1], &[0, 1]]);
        let k = kronecker(&BitMatrix::identity(2), &a);
        assert_eq!(k.num_rows(), 4);
        assert!(k.get(0, 0) && k.get(0, 1) && !k.get(0, 2));
        assert!(k.get(2, 2) && k.get(2, 3));
    }

    #[test]
    fn kronecker_dimensions_and_weight() {
        let a = BitMatrix::from_rows_u8(&[&[1, 0, 1]]);
        let b = BitMatrix::from_rows_u8(&[&[1, 1], &[0, 1]]);
        let k = kronecker(&a, &b);
        assert_eq!((k.num_rows(), k.num_cols()), (2, 6));
        let total: usize = k.rows_iter().map(|r| r.weight()).sum();
        assert_eq!(total, 2 * 3); // weight(a) * weight(b)
    }

    #[test]
    fn hgp_of_repetition_codes_is_surface_like() {
        // HGP of two [3,1,3] repetition codes gives the [[13, 1, 3]] (unrotated) surface code.
        let rep = ClassicalCode::repetition(3);
        let code = hypergraph_product(&rep, &rep, "hgp_rep3");
        assert_eq!(code.n(), 13);
        assert_eq!(code.k(), 1);
    }

    #[test]
    fn hgp_k_matches_formula() {
        // HGP of Hamming [7,4,3] with repetition [3,1,3]:
        // k = k1*k2 + k1^T*k2^T where k^T = n - rank - (rows - rank)... for full-rank
        // checks k^T = n_checks - rank = 0, so k = 4 * 1 = 4.
        let ham = ClassicalCode::hamming_7_4();
        let rep = ClassicalCode::repetition(3);
        let code = hypergraph_product(&ham, &rep, "hgp_ham_rep");
        assert_eq!(code.n(), 7 * 3 + 3 * 2);
        assert_eq!(code.k(), 4);
    }

    #[test]
    fn circulant_rows_are_shifts() {
        let c = circulant(5, &[0, 2]);
        assert_eq!(c.row(0).ones().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(c.row(4).ones().collect::<Vec<_>>(), vec![1, 4]);
        // Circulants commute.
        let d = circulant(5, &[1, 3]);
        assert_eq!(c.mul(&d).unwrap(), d.mul(&c).unwrap());
    }

    #[test]
    fn generalized_bicycle_toric_instance() {
        // GB(l, a = 1 + x, b = 1 + x^s) are cyclic toric-like codes with k = 2.
        let code = generalized_bicycle(9, &[0, 1], &[0, 3], "gb_18_2");
        assert_eq!(code.n(), 18);
        assert_eq!(code.k(), 2);
        assert_eq!(code.max_stabilizer_weight(), 4);
    }

    #[test]
    fn bivariate_bicycle_72_12_6() {
        // The [[72, 12, 6]] bivariate bicycle code of Bravyi et al. (2024).
        let code = bivariate_bicycle(
            6,
            6,
            &[(3, 0), (0, 1), (0, 2)],
            &[(0, 3), (1, 0), (2, 0)],
            "bb_72_12",
        );
        assert_eq!(code.n(), 72);
        assert_eq!(code.k(), 12);
        assert_eq!(code.max_stabilizer_weight(), 6);
    }

    #[test]
    fn bivariate_matrix_is_permutation_sum() {
        let m = bivariate_matrix(3, 4, &[(1, 2)]);
        // A single monomial lifts to a permutation matrix: every row/column weight 1.
        for r in 0..12 {
            assert_eq!(m.row(r).weight(), 1);
            assert_eq!(m.column(r).weight(), 1);
        }
    }
}
