//! Small named codes: the Steane code and the quantum repetition code.

use crate::classical::ClassicalCode;
use crate::css::CssCode;
use prophunt_gf2::BitMatrix;

/// The `[[7, 1, 3]]` Steane code (self-dual CSS code built from the Hamming `[7,4,3]` code).
///
/// The paper (Section 3) uses the Steane code as an example of a code where *every* CNOT
/// ordering produces distance-reducing hook errors, motivating circuit-level analysis.
pub fn steane_code() -> CssCode {
    let h = ClassicalCode::hamming_7_4().parity_check().clone();
    CssCode::with_known_distance("steane", h.clone(), h, 3)
        .expect("Steane code is a valid CSS code")
}

/// The `[[n, 1, 1]]` quantum repetition (bit-flip) code: `n − 1` weight-2 Z checks and no
/// X checks. It protects against X errors only, which makes it a convenient minimal
/// test-bed for syndrome-measurement machinery.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn quantum_repetition_code(n: usize) -> CssCode {
    assert!(n >= 2, "repetition code needs n >= 2");
    let hz = ClassicalCode::repetition(n).parity_check().clone();
    let hx = BitMatrix::zeros(0, n);
    // L_X = X on every qubit, L_Z = Z on the first qubit.
    let mut lx = BitMatrix::zeros(1, n);
    for q in 0..n {
        lx.set(0, q, true);
    }
    let mut lz = BitMatrix::zeros(1, n);
    lz.set(0, 0, true);
    CssCode::new(format!("repetition_{n}"), hx, hz)
        .expect("repetition code is a valid CSS code")
        .with_logicals(lx, lz)
        .expect("repetition code logicals are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_gf2::BitMatrix;

    #[test]
    fn steane_parameters() {
        let code = steane_code();
        assert_eq!((code.n(), code.k()), (7, 1));
        assert_eq!(code.num_x_stabilizers(), 3);
        assert_eq!(code.num_z_stabilizers(), 3);
        assert_eq!(code.max_stabilizer_weight(), 4);
        assert_eq!(code.known_distance(), Some(3));
        // Self-dual: X and Z checks are identical matrices.
        assert_eq!(code.hx(), code.hz());
    }

    #[test]
    fn steane_logicals_are_weight_three_or_more() {
        let code = steane_code();
        assert!(code.lx().row(0).weight() >= 3);
        assert!(code.lz().row(0).weight() >= 3);
        let pairing = code.lx().mul(&code.lz().transpose()).unwrap();
        assert_eq!(pairing, BitMatrix::identity(1));
    }

    #[test]
    fn repetition_code_parameters() {
        for n in [2, 3, 5, 9] {
            let code = quantum_repetition_code(n);
            assert_eq!((code.n(), code.k()), (n, 1));
            assert_eq!(code.num_x_stabilizers(), 0);
            assert_eq!(code.num_z_stabilizers(), n - 1);
        }
    }

    #[test]
    fn repetition_code_detects_single_x_errors() {
        let code = quantum_repetition_code(5);
        for q in 0..5 {
            let e = prophunt_gf2::BitVec::from_indices(5, &[q]);
            assert!(!code.syndrome_of_x_errors(&e).is_zero() || 5 == 1);
        }
        // The all-ones X error is undetected and flips the logical (it *is* L_X).
        let all = prophunt_gf2::BitVec::from_bools(&[true; 5]);
        assert!(code.syndrome_of_x_errors(&all).is_zero());
        assert!(code.x_errors_flip_logical(&all));
    }
}
