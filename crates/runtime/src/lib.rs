//! Deterministic, bounded parallel execution for the PropHunt workspace.
//!
//! Every parallel stage of the optimization pipeline — ambiguous-subgraph
//! sampling, candidate verification and Monte-Carlo logical-error-rate
//! estimation — is embarrassingly parallel, but the seed implementation gave
//! each call site its own `crossbeam::thread::scope` block, spawned one OS
//! thread *per candidate* during verification, and derived RNG seeds per
//! **thread**, so results silently changed with the thread count.
//!
//! This crate replaces all of that with one shared execution layer built on
//! three rules:
//!
//! 1. **Work is split by task, never by thread.** A parallel call is divided
//!    into a thread-count-independent list of tasks (items, chunks, or shot
//!    batches). Worker threads pull task indices from a shared atomic counter,
//!    so the *schedule* is dynamic but the *set of tasks* is fixed.
//! 2. **Randomness is derived per task.** [`SeedStream`] maps `(base seed,
//!    task index)` to an independent RNG seed via splitmix64. Any fixed
//!    `(seed, chunk_size)` therefore yields bit-identical results at any
//!    thread count.
//! 3. **Results are assembled in task order.** Whatever order tasks finish
//!    in, outputs are returned ordered by task index, so downstream code sees
//!    a deterministic sequence.
//!
//! Threads are bounded by [`RuntimeConfig::threads`]; a parallel call spawns
//! at most that many scoped workers (fewer when there are fewer tasks) and
//! never one thread per work item.
//!
//! # Example
//!
//! ```
//! use prophunt_runtime::{Runtime, RuntimeConfig, SeedStream};
//!
//! let runtime = Runtime::new(RuntimeConfig::new(4, 16, 0xfeed));
//! let squares = runtime.par_map(&[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Per-task seeds: identical at any thread count.
//! let stream = SeedStream::new(7);
//! let a = runtime.par_seeded(8, &stream, |_task, seed| seed);
//! let single = Runtime::new(RuntimeConfig::new(1, 16, 0xfeed));
//! assert_eq!(a, single.par_seeded(8, &stream, |_task, seed| seed));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use prophunt_obs::{duration_ns, Obs, TraceSpan};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Configuration of the shared parallel runtime.
///
/// One `RuntimeConfig` is plumbed through `PropHuntConfig`, the LER estimator
/// and the bench binaries so an entire run shares a single `(threads,
/// chunk_size, seed)` triple. `threads` affects wall-clock time only;
/// `chunk_size` and `seed` define the deterministic result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Maximum number of worker threads a parallel call may use.
    pub threads: usize,
    /// Number of work items (e.g. Monte-Carlo shots) per task. Part of the
    /// deterministic contract: changing it changes which task processes which
    /// item, and therefore which RNG stream the item sees.
    pub chunk_size: usize,
    /// Base seed from which every per-task seed is derived.
    pub seed: u64,
}

impl RuntimeConfig {
    /// Creates a configuration with the given thread bound, chunk size and seed.
    pub fn new(threads: usize, chunk_size: usize, seed: u64) -> Self {
        RuntimeConfig {
            threads,
            chunk_size,
            seed,
        }
    }

    /// A single-threaded configuration (useful as a determinism reference).
    pub fn single_threaded(seed: u64) -> Self {
        RuntimeConfig::new(1, Self::DEFAULT_CHUNK_SIZE, seed)
    }

    /// The default chunk size used by [`Default`] and [`Self::single_threaded`].
    pub const DEFAULT_CHUNK_SIZE: usize = 64;

    /// Returns the configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with a different thread bound.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the configuration with a different chunk size.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        RuntimeConfig::new(threads, Self::DEFAULT_CHUNK_SIZE, 0)
    }
}

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 finalizer: a bijective avalanche mix on `u64`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives independent per-*task* RNG seeds from one base seed.
///
/// The stream is a pure function: `seed_for(i)` is `splitmix64(base +
/// (i + 1) * gamma)`, so any task can compute its seed without coordination
/// and the mapping never depends on which OS thread runs the task — the fix
/// for the seed implementation's per-thread seeding bug.
///
/// [`SeedStream::substream`] derives a statistically independent child stream
/// for a labelled pipeline stage (e.g. one per optimizer iteration), keeping
/// stage seeds from colliding even when task indices overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    base: u64,
}

impl SeedStream {
    /// Creates the root stream for `seed`.
    pub fn new(seed: u64) -> Self {
        SeedStream {
            base: splitmix64(seed),
        }
    }

    /// Returns the seed for task `index`.
    pub fn seed_for(&self, index: u64) -> u64 {
        splitmix64(
            self.base
                .wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)),
        )
    }

    /// Derives an independent child stream for the stage labelled `label`.
    pub fn substream(&self, label: u64) -> SeedStream {
        SeedStream {
            base: splitmix64(self.base ^ label.wrapping_mul(0xd6e8_feb8_6659_fd93)),
        }
    }
}

/// The shared bounded worker pool.
///
/// A `Runtime` is cheap to construct and holds only its configuration; each
/// parallel call opens a [`std::thread::scope`] with at most
/// `config.threads` workers that pull task indices from an atomic counter
/// (dynamic load balancing, fixed task set). Results are always returned in
/// task order regardless of completion order.
/// Pool-level instrumentation is optional: [`Runtime::new`] attaches no
/// observability registry ([`RuntimeConfig`] stays `Copy`, and the seed
/// streams never see the registry), while [`Runtime::with_obs`] records per
/// call to [`Runtime::run_tasks`]:
///
/// - histogram `runtime.call.ns` — wall time of the whole call
/// - histogram `runtime.call.tasks` — task count of the call
/// - histogram `runtime.task.ns` — wall time of each task body
/// - histogram `runtime.task.wait.ns` — delay from call start to task start
///   (queue wait under the bounded pool)
/// - gauge `runtime.workers.peak` — largest worker count of any call
///
/// All pool metrics are histograms or gauges, never counters: wave sizes and
/// scheduling depend on the thread count, so they sit outside the
/// deterministic-counter contract.
#[derive(Debug, Clone)]
pub struct Runtime {
    config: RuntimeConfig,
    obs: Obs,
}

impl Runtime {
    /// Creates a runtime from `config` with observability disabled.
    pub fn new(config: RuntimeConfig) -> Self {
        Runtime {
            config,
            obs: Obs::disabled(),
        }
    }

    /// Creates a runtime from `config` recording pool metrics into `obs`.
    pub fn with_obs(config: RuntimeConfig, obs: Obs) -> Self {
        Runtime { config, obs }
    }

    /// Returns the runtime's observability handle (disabled unless the
    /// runtime was built with [`Runtime::with_obs`]).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Returns the runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Returns the effective thread bound (at least 1).
    pub fn threads(&self) -> usize {
        self.config.threads.max(1)
    }

    /// Returns the effective chunk size (at least 1).
    pub fn chunk_size(&self) -> usize {
        self.config.chunk_size.max(1)
    }

    /// Returns the root [`SeedStream`] of this runtime's seed.
    pub fn seed_stream(&self) -> SeedStream {
        SeedStream::new(self.config.seed)
    }

    /// Core primitive: evaluates `f(0..tasks)` with bounded workers and
    /// returns the results ordered by task index.
    pub fn run_tasks<U, F>(&self, tasks: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let workers = self.threads().min(tasks);
        // Pool metrics are strictly out-of-band: handles are hoisted here so
        // the disabled path costs one `None` check per task, and nothing below
        // touches the seed streams.
        let _call_span = self.obs.span("runtime.call.ns");
        let call_start = Instant::now();
        if let Some(h) = self.obs.histogram("runtime.call.tasks") {
            h.record(tasks as u64);
        }
        self.obs.gauge_max("runtime.workers.peak", workers as u64);
        let task_hist = self.obs.histogram("runtime.task.ns");
        let wait_hist = self.obs.histogram("runtime.task.wait.ns");
        // Trace plumbing rides the same out-of-band contract: one pool-call
        // span on the control lane, one task span per task on its worker's
        // lane (parented to the call span across threads), queue-wait and
        // worker attribution as task-span args.
        let tracer = self.obs.tracer().cloned();
        let mut call_trace = tracer.as_ref().map(|t| {
            let mut span = t.span("runtime.call", "runtime");
            span.arg("tasks", tasks as u64);
            span.arg("workers", workers as u64);
            span
        });
        let call_id = call_trace.as_ref().map_or(0, TraceSpan::id);
        let timed = |worker: u64, task: usize| -> U {
            if task_hist.is_none() && tracer.is_none() {
                return f(task);
            }
            let wait_ns = duration_ns(call_start.elapsed());
            if let Some(wh) = &wait_hist {
                wh.record(wait_ns);
            }
            let task_trace = tracer.as_ref().map(|t| {
                let mut span = t.span_child_of("runtime.task", "runtime", call_id);
                span.arg("task", task as u64);
                span.arg("worker", worker);
                span.arg("wait_ns", wait_ns);
                span
            });
            let started = Instant::now();
            let out = f(task);
            if let Some(th) = &task_hist {
                th.record(duration_ns(started.elapsed()));
            }
            drop(task_trace);
            out
        };
        if workers <= 1 {
            let out = (0..tasks).map(|task| timed(0, task)).collect();
            if let Some(span) = call_trace.take() {
                span.finish();
            }
            return out;
        }
        let next = AtomicUsize::new(0);
        let timed = &timed;
        let next = &next;
        let tracer = &tracer;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        // Lane `w + 1`: lane 0 stays the control thread. The
                        // guard's drop also flushes the worker's trace buffer
                        // before the scope joins.
                        let _lane = tracer.as_ref().map(|t| t.worker_scope(w as u64 + 1));
                        let mut local: Vec<(usize, U)> = Vec::new();
                        loop {
                            let task = next.fetch_add(1, Ordering::Relaxed);
                            if task >= tasks {
                                break;
                            }
                            local.push((task, timed(w as u64 + 1, task)));
                        }
                        local
                    })
                })
                .collect();
            let mut indexed: Vec<(usize, U)> = Vec::with_capacity(tasks);
            for handle in handles {
                indexed.extend(handle.join().expect("runtime worker panicked"));
            }
            indexed.sort_unstable_by_key(|(task, _)| *task);
            let out: Vec<U> = indexed.into_iter().map(|(_, value)| value).collect();
            if let Some(span) = call_trace.take() {
                span.finish();
            }
            out
        })
    }

    /// Maps `f` over `items` in parallel, preserving item order.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.run_tasks(items.len(), |i| f(&items[i]))
    }

    /// Maps `f` over contiguous chunks of `items` (each of
    /// [`Self::chunk_size`] elements, except possibly the last), returning one
    /// result per chunk in chunk order.
    ///
    /// `f` receives the chunk index and the chunk slice. The chunk boundaries
    /// depend only on `chunk_size`, never on the thread count.
    pub fn par_map_chunked<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> U + Sync,
    {
        let chunk = self.chunk_size();
        let chunks = items.len().div_ceil(chunk);
        self.run_tasks(chunks, |c| {
            let start = c * chunk;
            let end = (start + chunk).min(items.len());
            f(c, &items[start..end])
        })
    }

    /// Runs `tasks` seeded tasks — `f(task_index, seed)` with
    /// `seed = stream.seed_for(task_index)` — and returns the per-task
    /// results in task order.
    ///
    /// This is the deterministic replacement for "split the work across N
    /// threads and seed each thread": the task count and per-task seeds are
    /// independent of how many workers execute them.
    pub fn par_seeded<U, F>(&self, tasks: usize, stream: &SeedStream, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, u64) -> U + Sync,
    {
        self.run_tasks(tasks, |i| f(i, stream.seed_for(i as u64)))
    }

    /// Runs `tasks` tasks each producing a `Vec`, and concatenates the
    /// per-task outputs in task order.
    pub fn par_collect<U, F>(&self, tasks: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> Vec<U> + Sync,
    {
        self.run_tasks(tasks, f).into_iter().flatten().collect()
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new(RuntimeConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 8] {
            let runtime = Runtime::new(RuntimeConfig::new(threads, 4, 0));
            let items: Vec<usize> = (0..103).collect();
            let out = runtime.par_map(&items, |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_chunked_covers_items_in_order_with_exact_boundaries() {
        let runtime = Runtime::new(RuntimeConfig::new(8, 10, 0));
        let items: Vec<usize> = (0..95).collect();
        let chunks = runtime.par_map_chunked(&items, |c, chunk| (c, chunk.to_vec()));
        assert_eq!(chunks.len(), 10);
        for (expected, (c, chunk)) in chunks.iter().enumerate() {
            // Chunk results arrive in chunk order with the documented bounds.
            assert_eq!(*c, expected);
            let start = expected * 10;
            let len = if expected == 9 { 5 } else { 10 };
            assert_eq!(chunk.len(), len);
            assert_eq!(chunk[0], start);
        }
        let flattened: Vec<usize> = chunks.into_iter().flat_map(|(_, c)| c).collect();
        assert_eq!(flattened, items);
    }

    #[test]
    fn seeded_results_are_identical_across_thread_counts() {
        let stream = SeedStream::new(0x5eed);
        let reference =
            Runtime::new(RuntimeConfig::new(1, 7, 0)).par_seeded(33, &stream, |i, seed| (i, seed));
        for threads in [2, 3, 8] {
            let out = Runtime::new(RuntimeConfig::new(threads, 7, 0)).par_seeded(
                33,
                &stream,
                |i, seed| (i, seed),
            );
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn run_tasks_bounds_concurrency() {
        let runtime = Runtime::new(RuntimeConfig::new(3, 1, 0));
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        runtime.run_tasks(64, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn seed_stream_substreams_and_tasks_do_not_collide() {
        let root = SeedStream::new(1);
        let mut seen = std::collections::HashSet::new();
        for label in 0..8u64 {
            let sub = root.substream(label);
            for task in 0..256u64 {
                assert!(seen.insert(sub.seed_for(task)), "seed collision");
            }
        }
        // Pure function of (seed, label, index).
        assert_eq!(
            SeedStream::new(1).substream(3).seed_for(5),
            SeedStream::new(1).substream(3).seed_for(5)
        );
        assert_ne!(
            SeedStream::new(1).seed_for(0),
            SeedStream::new(2).seed_for(0)
        );
    }

    #[test]
    fn with_obs_records_pool_histograms_and_new_records_nothing() {
        let obs = Obs::enabled();
        let runtime = Runtime::with_obs(RuntimeConfig::new(3, 4, 0), obs.clone());
        let out = runtime.run_tasks(10, |i| i);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.histogram("runtime.call.ns").unwrap().count, 1);
        assert_eq!(snap.histogram("runtime.call.tasks").unwrap().sum, 10);
        assert_eq!(snap.histogram("runtime.task.ns").unwrap().count, 10);
        assert_eq!(snap.histogram("runtime.task.wait.ns").unwrap().count, 10);
        let peak = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "runtime.workers.peak");
        assert!(matches!(peak, Some((_, v)) if *v == 3));
        // Counters stay empty: pool metrics are all on the timing side.
        assert!(snap.counters.is_empty());
        // A plain runtime shares nothing with the registry.
        let plain = Runtime::new(RuntimeConfig::new(3, 4, 0));
        assert!(!plain.obs().is_enabled());
        plain.run_tasks(4, |i| i);
        assert_eq!(
            obs.snapshot()
                .unwrap()
                .histogram("runtime.call.ns")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn tracer_records_call_and_task_spans_with_worker_attribution() {
        let tracer = prophunt_obs::Tracer::new();
        // Tracer-only Obs: no registry, so histogram handles are all None and
        // tracing must carry the instrumented path on its own.
        let obs = Obs::disabled().with_tracer(tracer.clone());
        let runtime = Runtime::with_obs(RuntimeConfig::new(3, 4, 0), obs);
        let out = runtime.run_tasks(10, |i| i * 2);
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        let log = tracer.drain();
        assert_eq!(log.dropped, 0);
        let calls: Vec<_> = log
            .events
            .iter()
            .filter(|e| e.name == "runtime.call")
            .collect();
        assert_eq!(calls.len(), 1);
        let call = calls[0];
        assert_eq!(call.tid, 0, "pool call is recorded on the control lane");
        assert_eq!(call.args, vec![("tasks".into(), 10), ("workers".into(), 3)]);
        let tasks: Vec<_> = log
            .events
            .iter()
            .filter(|e| e.name == "runtime.task")
            .collect();
        assert_eq!(tasks.len(), 10);
        let mut seen: Vec<u64> = Vec::new();
        for task in &tasks {
            assert_eq!(task.parent, call.id, "task spans hang off the pool call");
            assert!((1..=3).contains(&task.tid), "worker lanes are 1..=workers");
            let args: std::collections::HashMap<&str, u64> =
                task.args.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            assert_eq!(args["worker"], task.tid);
            assert!(args.contains_key("wait_ns"));
            seen.push(args["task"]);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<u64>>());
        // The call span closes after every task span.
        for task in &tasks {
            assert!(call.ts_ns + call.dur_ns >= task.ts_ns + task.dur_ns);
        }

        // Single-threaded path uses lane 0 for the inline worker.
        let tracer1 = prophunt_obs::Tracer::new();
        let runtime1 = Runtime::with_obs(
            RuntimeConfig::new(1, 4, 0),
            Obs::disabled().with_tracer(tracer1.clone()),
        );
        runtime1.run_tasks(3, |i| i);
        let log1 = tracer1.drain();
        let lanes: Vec<u64> = log1
            .events
            .iter()
            .filter(|e| e.name == "runtime.task")
            .map(|e| e.tid)
            .collect();
        assert_eq!(lanes, vec![0, 0, 0]);
    }

    #[test]
    fn par_collect_concatenates_in_task_order() {
        let runtime = Runtime::new(RuntimeConfig::new(8, 1, 0));
        let out = runtime.par_collect(10, |i| vec![i; i % 3]);
        let expected: Vec<usize> = (0..10).flat_map(|i| vec![i; i % 3]).collect();
        assert_eq!(out, expected);
    }
}
