//! Abstract CNOT schedules for syndrome-measurement circuits.
//!
//! A schedule is described exactly the way the paper's Section 5.3 manipulates it:
//!
//! * for every stabilizer, the **order** in which its ancilla interacts with its data
//!   qubits (*reordering* changes permute this list), and
//! * for every data qubit, the **relative order** of the stabilizers that touch it
//!   (*rescheduling* changes flip one of these pairwise orientations — the directed
//!   multigraph of the paper's Figure 11).
//!
//! Together these constraints form a dependency DAG over individual CNOTs which
//! [`ScheduleSpec::cnot_layers`] lays out as parallel layers (ASAP / longest-path
//! layering). A schedule is *valid* when the DAG is acyclic **and** the measured
//! operators still commute, which for CSS codes means: for every X-stabilizer /
//! Z-stabilizer pair, the number of shared data qubits on which the X-check acts first
//! must be even.

use crate::CircuitError;
use prophunt_qec::surface::{Corner, SurfaceLayout};
use prophunt_qec::{CssCode, StabilizerKind};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::{BTreeMap, HashMap};

pub mod eval;

/// The CNOT nodes of a schedule with their ASAP layer indices (parallel
/// vectors) — the internal currency of [`ScheduleSpec::cnot_layers`] and
/// [`ScheduleSpec::depth`].
type Layering = (Vec<(StabilizerId, usize)>, Vec<usize>);

/// Flat stabilizer identifier: X stabilizers come first (`0..num_x`), then Z stabilizers
/// (`num_x..num_x + num_z`).
pub type StabilizerId = usize;

/// An abstract CNOT schedule for one round of syndrome measurement.
///
/// See the [module documentation](self) for the representation. Instances are typically
/// created by [`ScheduleSpec::coloration`] (the paper's baseline) or
/// [`ScheduleSpec::surface_hand_designed`], and then mutated by the PropHunt optimizer
/// through [`ScheduleSpec::reorder_before`] and [`ScheduleSpec::swap_relative_order`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleSpec {
    num_x: usize,
    num_z: usize,
    /// `orders[s]` = data qubits of stabilizer `s` in interaction order.
    orders: Vec<Vec<usize>>,
    /// For every data qubit and unordered pair of stabilizers touching it, the stabilizer
    /// that interacts with the qubit first. Keys are `(qubit, min(a, b), max(a, b))`.
    relative: BTreeMap<(usize, StabilizerId, StabilizerId), StabilizerId>,
}

impl ScheduleSpec {
    /// Number of X stabilizers covered by this schedule.
    pub fn num_x_stabilizers(&self) -> usize {
        self.num_x
    }

    /// Number of Z stabilizers covered by this schedule.
    pub fn num_z_stabilizers(&self) -> usize {
        self.num_z
    }

    /// Total number of stabilizers.
    pub fn num_stabilizers(&self) -> usize {
        self.num_x + self.num_z
    }

    /// Returns the kind of the stabilizer with flat id `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn kind_of(&self, s: StabilizerId) -> StabilizerKind {
        assert!(s < self.num_stabilizers(), "stabilizer id {s} out of range");
        if s < self.num_x {
            StabilizerKind::X
        } else {
            StabilizerKind::Z
        }
    }

    /// Converts a `(kind, index)` pair into a flat [`StabilizerId`].
    pub fn stabilizer_id(&self, kind: StabilizerKind, index: usize) -> StabilizerId {
        match kind {
            StabilizerKind::X => index,
            StabilizerKind::Z => self.num_x + index,
        }
    }

    /// Converts a flat [`StabilizerId`] back into a `(kind, index)` pair.
    pub fn kind_index(&self, s: StabilizerId) -> (StabilizerKind, usize) {
        if s < self.num_x {
            (StabilizerKind::X, s)
        } else {
            (StabilizerKind::Z, s - self.num_x)
        }
    }

    /// Returns the interaction order of stabilizer `s`.
    pub fn order(&self, s: StabilizerId) -> &[usize] {
        &self.orders[s]
    }

    /// Returns the stabilizer of the pair `(a, b)` that interacts with `qubit` first,
    /// or `None` if the pair was never ordered on that qubit.
    pub fn first_on_qubit(
        &self,
        qubit: usize,
        a: StabilizerId,
        b: StabilizerId,
    ) -> Option<StabilizerId> {
        if a == b {
            return Some(a);
        }
        let key = (qubit, a.min(b), a.max(b));
        self.relative.get(&key).copied()
    }

    /// Records that stabilizer `first` interacts with `qubit` before stabilizer `second`.
    pub fn set_relative_order(&mut self, qubit: usize, first: StabilizerId, second: StabilizerId) {
        assert_ne!(
            first, second,
            "a stabilizer cannot be ordered against itself"
        );
        let key = (qubit, first.min(second), first.max(second));
        self.relative.insert(key, first);
    }

    /// Flips the relative order of stabilizers `a` and `b` on `qubit` (a *rescheduling*
    /// change in the paper's terminology).
    ///
    /// # Panics
    ///
    /// Panics if the pair has no recorded order on that qubit.
    pub fn swap_relative_order(&mut self, qubit: usize, a: StabilizerId, b: StabilizerId) {
        let key = (qubit, a.min(b), a.max(b));
        let current = *self
            .relative
            .get(&key)
            .expect("swap_relative_order: pair has no recorded order on this qubit");
        let other = if current == a { b } else { a };
        self.relative.insert(key, other);
    }

    /// Moves `qubit_to_move` immediately before `anchor_qubit` in the interaction order of
    /// stabilizer `s` (a *reordering* change in the paper's terminology).
    ///
    /// # Panics
    ///
    /// Panics if either qubit is not in the stabilizer's order.
    pub fn reorder_before(&mut self, s: StabilizerId, qubit_to_move: usize, anchor_qubit: usize) {
        assert_ne!(
            qubit_to_move, anchor_qubit,
            "cannot move a qubit before itself"
        );
        let order = &mut self.orders[s];
        let from = order
            .iter()
            .position(|&q| q == qubit_to_move)
            .expect("qubit_to_move not in stabilizer order");
        order.remove(from);
        let to = order
            .iter()
            .position(|&q| q == anchor_qubit)
            .expect("anchor_qubit not in stabilizer order");
        order.insert(to, qubit_to_move);
    }

    /// Returns every recorded relative order as `(qubit, a, b, first)` with `a < b` and
    /// `first ∈ {a, b}`, in deterministic `(qubit, a, b)` order.
    ///
    /// Together with [`ScheduleSpec::order`] this exposes the complete state of a
    /// schedule, which is what the `prophunt-formats` schedule file format serializes
    /// ([`ScheduleSpec::from_components`] is the inverse).
    pub fn relative_entries(
        &self,
    ) -> impl Iterator<Item = (usize, StabilizerId, StabilizerId, StabilizerId)> + '_ {
        self.relative
            .iter()
            .map(|(&(q, a, b), &first)| (q, a, b, first))
    }

    /// Returns every `(qubit, other_stabilizer)` pair for which `other_stabilizer` shares
    /// `qubit` with `s`.
    pub fn neighbors_of(&self, s: StabilizerId) -> Vec<(usize, StabilizerId)> {
        let mut out = Vec::new();
        for (&(q, a, b), _) in self.relative.iter() {
            if a == s {
                out.push((q, b));
            } else if b == s {
                out.push((q, a));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Builds a schedule from explicit per-stabilizer orders and per-qubit stabilizer
    /// orders.
    ///
    /// `qubit_orders[q]` lists the stabilizers acting on data qubit `q` from first to
    /// last; every pair in that list receives a relative-order entry.
    ///
    /// # Panics
    ///
    /// Panics if the orders are inconsistent with the code's check matrices (missing or
    /// extra qubits). Use [`ScheduleSpec::try_from_orders`] for a fallible variant.
    pub fn from_orders(
        code: &CssCode,
        x_orders: Vec<Vec<usize>>,
        z_orders: Vec<Vec<usize>>,
        qubit_orders: Vec<Vec<StabilizerId>>,
    ) -> ScheduleSpec {
        Self::try_from_orders(code, x_orders, z_orders, qubit_orders)
            .expect("orders must be consistent with the code's check matrices")
    }

    /// Fallible variant of [`ScheduleSpec::from_orders`]: builds a schedule from explicit
    /// per-stabilizer orders and per-qubit stabilizer orders, validating instead of
    /// panicking. This is the entry point used when the orders come from *outside* the
    /// process (e.g. a parsed schedule file) rather than from a trusted constructor.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSchedule`] if the order lists have the wrong
    /// lengths, name out-of-range stabilizers, order a stabilizer against itself, or do
    /// not cover exactly the code's Tanner graph.
    pub fn try_from_orders(
        code: &CssCode,
        x_orders: Vec<Vec<usize>>,
        z_orders: Vec<Vec<usize>>,
        qubit_orders: Vec<Vec<StabilizerId>>,
    ) -> Result<ScheduleSpec, CircuitError> {
        let num_x = code.num_x_stabilizers();
        let num_z = code.num_z_stabilizers();
        let invalid = |reason: String| CircuitError::InvalidSchedule { reason };
        if x_orders.len() != num_x {
            return Err(invalid(format!(
                "expected {num_x} X-stabilizer orders, got {}",
                x_orders.len()
            )));
        }
        if z_orders.len() != num_z {
            return Err(invalid(format!(
                "expected {num_z} Z-stabilizer orders, got {}",
                z_orders.len()
            )));
        }
        if qubit_orders.len() != code.n() {
            return Err(invalid(format!(
                "expected {} per-qubit orders, got {}",
                code.n(),
                qubit_orders.len()
            )));
        }
        let mut orders = x_orders;
        orders.extend(z_orders);
        let mut spec = ScheduleSpec {
            num_x,
            num_z,
            orders,
            relative: BTreeMap::new(),
        };
        for (q, stabs) in qubit_orders.iter().enumerate() {
            for (i, &s) in stabs.iter().enumerate() {
                if s >= spec.num_stabilizers() {
                    return Err(invalid(format!(
                        "qubit {q} orders an out-of-range stabilizer id {s}"
                    )));
                }
                if stabs[..i].contains(&s) {
                    return Err(invalid(format!(
                        "qubit {q} lists stabilizer {s} twice in its order"
                    )));
                }
            }
            for i in 0..stabs.len() {
                for j in i + 1..stabs.len() {
                    spec.set_relative_order(q, stabs[i], stabs[j]);
                }
            }
        }
        spec.check_covers(code)?;
        Ok(spec)
    }

    /// Rebuilds a schedule from its serialized components: the stabilizer counts, the
    /// per-stabilizer interaction orders, and the list of `(qubit, first, second)`
    /// relative orders — exactly what [`ScheduleSpec::order`] and
    /// [`ScheduleSpec::relative_entries`] expose.
    ///
    /// Unlike [`ScheduleSpec::try_from_orders`], this does not require the code: a
    /// schedule file is self-contained. Consistency with a particular code is checked
    /// separately by [`ScheduleSpec::validate`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSchedule`] if `orders` has the wrong length, an
    /// order repeats a qubit, or a relative entry names an out-of-range stabilizer,
    /// orders a stabilizer against itself, involves a stabilizer that does not act on
    /// the named qubit, or contradicts an earlier entry for the same pair.
    pub fn from_components(
        num_x: usize,
        num_z: usize,
        orders: Vec<Vec<usize>>,
        relative: impl IntoIterator<Item = (usize, StabilizerId, StabilizerId)>,
    ) -> Result<ScheduleSpec, CircuitError> {
        let invalid = |reason: String| CircuitError::InvalidSchedule { reason };
        let num_stabs = num_x + num_z;
        if orders.len() != num_stabs {
            return Err(invalid(format!(
                "expected {num_stabs} stabilizer orders ({num_x} X + {num_z} Z), got {}",
                orders.len()
            )));
        }
        for (s, order) in orders.iter().enumerate() {
            let mut seen = order.clone();
            seen.sort_unstable();
            if seen.windows(2).any(|w| w[0] == w[1]) {
                return Err(invalid(format!(
                    "stabilizer {s} lists a data qubit twice in its order"
                )));
            }
        }
        let mut spec = ScheduleSpec {
            num_x,
            num_z,
            orders,
            relative: BTreeMap::new(),
        };
        for (qubit, first, second) in relative {
            if first == second {
                return Err(invalid(format!(
                    "qubit {qubit}: stabilizer {first} is ordered against itself"
                )));
            }
            for s in [first, second] {
                if s >= num_stabs {
                    return Err(invalid(format!(
                        "qubit {qubit}: stabilizer id {s} out of range (have {num_stabs})"
                    )));
                }
                if !spec.orders[s].contains(&qubit) {
                    return Err(invalid(format!(
                        "qubit {qubit}: stabilizer {s} does not act on this qubit"
                    )));
                }
            }
            // Reject duplicate/conflicting entries instead of silently letting the
            // last one win — a hand-edited file with both `first q : a b` and
            // `first q : b a` is a mistake the author needs to see.
            if let Some(previous) = spec.first_on_qubit(qubit, first, second) {
                return Err(invalid(format!(
                    "qubit {qubit}: pair ({first}, {second}) is ordered twice \
                     (earlier entry puts {previous} first)"
                )));
            }
            spec.set_relative_order(qubit, first, second);
        }
        Ok(spec)
    }

    /// Builds the paper's baseline **coloration circuit** schedule (Algorithm 1 of
    /// Tremblay et al.): edge-color the X Tanner graph and the Z Tanner graph separately
    /// and run all X-check CNOT layers before all Z-check CNOT layers.
    pub fn coloration(code: &CssCode) -> ScheduleSpec {
        Self::coloration_impl(code, None::<&mut rand::rngs::ThreadRng>)
    }

    /// Builds a randomized coloration schedule (used by the paper's Figure 13): the edge
    /// coloring is computed over a randomly permuted edge order, producing a different —
    /// but still valid — baseline circuit for each seed.
    pub fn coloration_random<R: Rng>(code: &CssCode, rng: &mut R) -> ScheduleSpec {
        Self::coloration_impl(code, Some(rng))
    }

    fn coloration_impl<R: Rng>(code: &CssCode, mut rng: Option<&mut R>) -> ScheduleSpec {
        let num_x = code.num_x_stabilizers();
        let num_z = code.num_z_stabilizers();
        let x_supports: Vec<Vec<usize>> = (0..num_x)
            .map(|i| code.stabilizer_support(StabilizerKind::X, i))
            .collect();
        let z_supports: Vec<Vec<usize>> = (0..num_z)
            .map(|i| code.stabilizer_support(StabilizerKind::Z, i))
            .collect();
        let x_colors = edge_color_bipartite(&x_supports, code.n(), rng.as_deref_mut());
        let z_colors = edge_color_bipartite(&z_supports, code.n(), rng);

        // Per-stabilizer order: qubits sorted by the color of their edge.
        let order_by_color = |supports: &[Vec<usize>], colors: &[Vec<usize>]| -> Vec<Vec<usize>> {
            supports
                .iter()
                .zip(colors.iter())
                .map(|(sup, cols)| {
                    let mut pairs: Vec<(usize, usize)> =
                        cols.iter().copied().zip(sup.iter().copied()).collect();
                    pairs.sort_unstable();
                    pairs.into_iter().map(|(_, q)| q).collect()
                })
                .collect()
        };
        let x_orders = order_by_color(&x_supports, &x_colors);
        let z_orders = order_by_color(&z_supports, &z_colors);

        // Per-qubit order: X stabilizers (by color) first, then Z stabilizers (by color).
        let mut qubit_orders: Vec<Vec<(usize, StabilizerId)>> = vec![Vec::new(); code.n()];
        for (i, (sup, cols)) in x_supports.iter().zip(x_colors.iter()).enumerate() {
            for (&q, &c) in sup.iter().zip(cols.iter()) {
                qubit_orders[q].push((c, i));
            }
        }
        let num_x_colors = x_colors.iter().flatten().max().map_or(0, |&c| c + 1);
        for (i, (sup, cols)) in z_supports.iter().zip(z_colors.iter()).enumerate() {
            for (&q, &c) in sup.iter().zip(cols.iter()) {
                qubit_orders[q].push((num_x_colors + c, num_x + i));
            }
        }
        let qubit_orders: Vec<Vec<StabilizerId>> = qubit_orders
            .into_iter()
            .map(|mut v| {
                v.sort_unstable();
                v.into_iter().map(|(_, s)| s).collect()
            })
            .collect();
        Self::from_orders(code, x_orders, z_orders.clone(), qubit_orders)
    }

    /// Builds the hand-designed surface-code schedule (the "N/Z" schedule of the paper's
    /// Section 3.1): X stabilizers visit their corners column-major (`NW, SW, NE, SE`) so
    /// that hook errors lie perpendicular to the horizontal X logical, and Z stabilizers
    /// visit row-major (`NW, NE, SW, SE`).
    pub fn surface_hand_designed(code: &CssCode, layout: &SurfaceLayout) -> ScheduleSpec {
        let x_order = [Corner::Nw, Corner::Sw, Corner::Ne, Corner::Se];
        let z_order = [Corner::Nw, Corner::Ne, Corner::Sw, Corner::Se];
        Self::surface_from_corner_orders(code, layout, &x_order, &z_order)
    }

    /// Builds a deliberately *poor* surface-code schedule (both stabilizer kinds visit
    /// their corners row-major), which aligns hook errors with the logical operators and
    /// reduces the effective distance — the paper's Figure 6 comparison circuit.
    pub fn surface_poor(code: &CssCode, layout: &SurfaceLayout) -> ScheduleSpec {
        let order = [Corner::Nw, Corner::Ne, Corner::Sw, Corner::Se];
        Self::surface_from_corner_orders(code, layout, &order, &order)
    }

    /// Builds a surface-code schedule from explicit corner orders for the two stabilizer
    /// kinds. The global time slot of a CNOT is the position of its corner in the kind's
    /// corner order, which also fixes the per-qubit relative orders.
    pub fn surface_from_corner_orders(
        code: &CssCode,
        layout: &SurfaceLayout,
        x_corner_order: &[Corner; 4],
        z_corner_order: &[Corner; 4],
    ) -> ScheduleSpec {
        let num_x = code.num_x_stabilizers();
        let x_orders: Vec<Vec<usize>> = (0..num_x)
            .map(|i| layout.ordered_support(StabilizerKind::X, i, x_corner_order))
            .collect();
        let z_orders: Vec<Vec<usize>> = (0..code.num_z_stabilizers())
            .map(|i| layout.ordered_support(StabilizerKind::Z, i, z_corner_order))
            .collect();

        // Per-qubit order by global corner slot.
        let slot_of = |corner_order: &[Corner; 4], corner: Corner| -> usize {
            corner_order
                .iter()
                .position(|&c| c == corner)
                .expect("corner present")
        };
        let mut qubit_orders: Vec<Vec<(usize, StabilizerId)>> = vec![Vec::new(); code.n()];
        for (i, corners) in layout.x_corners.iter().enumerate() {
            for (ci, q) in corners.iter().enumerate() {
                if let Some(q) = q {
                    qubit_orders[*q].push((slot_of(x_corner_order, Corner::ALL[ci]), i));
                }
            }
        }
        for (i, corners) in layout.z_corners.iter().enumerate() {
            for (ci, q) in corners.iter().enumerate() {
                if let Some(q) = q {
                    qubit_orders[*q].push((slot_of(z_corner_order, Corner::ALL[ci]), num_x + i));
                }
            }
        }
        let qubit_orders: Vec<Vec<StabilizerId>> = qubit_orders
            .into_iter()
            .map(|mut v| {
                v.sort_unstable();
                debug_assert!(
                    v.windows(2).all(|w| w[0].0 != w[1].0),
                    "surface schedule produced a time-slot collision on a data qubit"
                );
                v.into_iter().map(|(_, s)| s).collect()
            })
            .collect();
        Self::from_orders(code, x_orders, z_orders, qubit_orders)
    }

    // ------------------------------------------------------------------
    // Validity and layout
    // ------------------------------------------------------------------

    /// Checks that the schedule covers exactly the code's Tanner graph: it must have one
    /// order per stabilizer, each order must visit exactly the stabilizer's support, and
    /// **every** pair of stabilizers sharing a data qubit — same-kind pairs included —
    /// must have a recorded relative order. Without the last condition a schedule can
    /// pass commutation checking (which only sees X/Z pairs) and then collide two CNOTs
    /// on one data qubit in the same circuit moment.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidSchedule`] naming the first mismatch.
    pub fn check_covers(&self, code: &CssCode) -> Result<(), CircuitError> {
        if self.num_x != code.num_x_stabilizers() || self.num_z != code.num_z_stabilizers() {
            return Err(CircuitError::InvalidSchedule {
                reason: format!(
                    "schedule covers {}+{} stabilizers but the code has {}+{}",
                    self.num_x,
                    self.num_z,
                    code.num_x_stabilizers(),
                    code.num_z_stabilizers()
                ),
            });
        }
        for s in 0..self.num_stabilizers() {
            let (kind, index) = self.kind_index(s);
            let mut expected = code.stabilizer_support(kind, index);
            let mut actual = self.orders[s].clone();
            expected.sort_unstable();
            actual.sort_unstable();
            if actual != expected {
                return Err(CircuitError::InvalidSchedule {
                    reason: format!(
                        "order for stabilizer {s} visits {actual:?} but the code support is {expected:?}"
                    ),
                });
            }
        }
        for (q, stabs) in code.qubit_stabilizers().into_iter().enumerate() {
            for i in 0..stabs.len() {
                for j in i + 1..stabs.len() {
                    let a = self.stabilizer_id(stabs[i].0, stabs[i].1);
                    let b = self.stabilizer_id(stabs[j].0, stabs[j].1);
                    if self.first_on_qubit(q, a, b).is_none() {
                        return Err(CircuitError::InvalidSchedule {
                            reason: format!(
                                "stabilizers {a} and {b} share data qubit {q} but the \
                                 schedule does not order them (missing `first {q} : {a} {b}`)"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Verifies that the scheduled circuit still measures commuting operators.
    ///
    /// For every X-stabilizer / Z-stabilizer pair the number of shared data qubits on
    /// which the X-check CNOT comes first must be even.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::BreaksCommutation`] naming the first offending pair, or
    /// [`CircuitError::IncompleteSchedule`] if a shared qubit has no recorded order.
    pub fn check_commutation(&self, code: &CssCode) -> Result<(), CircuitError> {
        for xi in 0..code.num_x_stabilizers() {
            for zi in 0..code.num_z_stabilizers() {
                let shared = code.shared_qubits(xi, zi);
                if shared.is_empty() {
                    continue;
                }
                let x_id = self.stabilizer_id(StabilizerKind::X, xi);
                let z_id = self.stabilizer_id(StabilizerKind::Z, zi);
                let mut x_first = 0usize;
                for &q in &shared {
                    match self.first_on_qubit(q, x_id, z_id) {
                        Some(first) if first == x_id => x_first += 1,
                        Some(_) => {}
                        None => return Err(CircuitError::IncompleteSchedule),
                    }
                }
                if !x_first.is_multiple_of(2) {
                    return Err(CircuitError::BreaksCommutation {
                        x_stabilizer: xi,
                        z_stabilizer: zi,
                    });
                }
            }
        }
        Ok(())
    }

    /// Assigns every CNOT its ASAP (longest-path) layer without materializing the
    /// per-layer node lists: returns the node list and a parallel layer index per node.
    /// This is the count-only layering path shared by [`ScheduleSpec::cnot_layers`]
    /// (which additionally groups nodes by layer) and [`ScheduleSpec::depth`] (which
    /// only needs the maximum).
    fn layering(&self) -> Result<Layering, CircuitError> {
        // Node ids: (stabilizer, position in its order).
        let mut node_of: HashMap<(StabilizerId, usize), usize> = HashMap::new();
        let mut nodes: Vec<(StabilizerId, usize)> = Vec::new();
        for (s, order) in self.orders.iter().enumerate() {
            for &q in order {
                node_of.insert((s, q), nodes.len());
                nodes.push((s, q));
            }
        }
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut indeg: Vec<usize> = vec![0; nodes.len()];
        let add_edge =
            |from: usize, to: usize, succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>| {
                succs[from].push(to);
                indeg[to] += 1;
            };
        // Chain CNOTs of the same stabilizer.
        for (s, order) in self.orders.iter().enumerate() {
            for w in order.windows(2) {
                let a = node_of[&(s, w[0])];
                let b = node_of[&(s, w[1])];
                add_edge(a, b, &mut succs, &mut indeg);
            }
        }
        // Chain CNOTs on the same data qubit according to the relative orders.
        for (&(q, a, b), &first) in self.relative.iter() {
            let second = if first == a { b } else { a };
            if let (Some(&na), Some(&nb)) = (node_of.get(&(first, q)), node_of.get(&(second, q))) {
                add_edge(na, nb, &mut succs, &mut indeg);
            }
        }
        // Kahn's algorithm with longest-path layer assignment.
        let mut layer = vec![0usize; nodes.len()];
        let mut queue: Vec<usize> = (0..nodes.len()).filter(|&i| indeg[i] == 0).collect();
        let mut processed = 0usize;
        while let Some(node) = queue.pop() {
            processed += 1;
            for &next in &succs[node] {
                layer[next] = layer[next].max(layer[node] + 1);
                indeg[next] -= 1;
                if indeg[next] == 0 {
                    queue.push(next);
                }
            }
        }
        if processed != nodes.len() {
            return Err(CircuitError::Unschedulable);
        }
        Ok((nodes, layer))
    }

    /// Lays the schedule out as parallel CNOT layers using ASAP (longest-path) layering
    /// over the CNOT dependency DAG.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Unschedulable`] if the dependency graph has a cycle.
    pub fn cnot_layers(&self) -> Result<Vec<Vec<(StabilizerId, usize)>>, CircuitError> {
        let (nodes, layer) = self.layering()?;
        let depth = layer.iter().copied().max().map_or(0, |m| m + 1);
        let mut layers: Vec<Vec<(StabilizerId, usize)>> = vec![Vec::new(); depth];
        for (i, &(s, q)) in nodes.iter().enumerate() {
            layers[layer[i]].push((s, q));
        }
        Ok(layers)
    }

    /// Returns the CNOT depth of the schedule (number of CNOT layers), or an error if it
    /// cannot be laid out.
    ///
    /// Uses the count-only layering path: unlike [`ScheduleSpec::cnot_layers`] it never
    /// materializes the per-layer node lists — depth callers (the optimizer's candidate
    /// tie-break, the search strategies' objective) only need the maximum layer index.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Unschedulable`] if the dependency graph has a cycle.
    pub fn depth(&self) -> Result<usize, CircuitError> {
        let (_, layer) = self.layering()?;
        Ok(layer.iter().copied().max().map_or(0, |m| m + 1))
    }

    /// Runs the validity check of the optimizer's inner loop: commutation must be
    /// preserved and the schedule must be layout-able.
    ///
    /// Tanner-graph coverage is *not* re-checked here — trusted constructors enforce
    /// it and schedule mutations preserve it, and this method runs once per candidate
    /// change. Schedules arriving from outside the process (a parsed schedule file)
    /// should go through [`ScheduleSpec::validate_for_code`] instead.
    ///
    /// # Errors
    ///
    /// Returns the first failing [`CircuitError`].
    pub fn validate(&self, code: &CssCode) -> Result<(), CircuitError> {
        self.check_commutation(code)?;
        self.cnot_layers()?;
        Ok(())
    }

    /// The full boundary check for externally supplied schedules: Tanner-graph
    /// coverage ([`ScheduleSpec::check_covers`]) plus [`ScheduleSpec::validate`].
    ///
    /// # Errors
    ///
    /// Returns the first failing [`CircuitError`].
    pub fn validate_for_code(&self, code: &CssCode) -> Result<(), CircuitError> {
        self.check_covers(code)?;
        self.validate(code)
    }

    /// Applies a random valid permutation to every stabilizer's order and derives
    /// per-qubit orders from random priorities. Useful for generating the diverse
    /// schedule population of the paper's Figure 1 study. The result is *not* guaranteed
    /// to preserve commutation; callers should filter with [`ScheduleSpec::validate`].
    pub fn random<R: Rng>(code: &CssCode, rng: &mut R) -> ScheduleSpec {
        let num_x = code.num_x_stabilizers();
        let num_z = code.num_z_stabilizers();
        let mut x_orders = Vec::with_capacity(num_x);
        for i in 0..num_x {
            let mut sup = code.stabilizer_support(StabilizerKind::X, i);
            sup.shuffle(rng);
            x_orders.push(sup);
        }
        let mut z_orders = Vec::with_capacity(num_z);
        for i in 0..num_z {
            let mut sup = code.stabilizer_support(StabilizerKind::Z, i);
            sup.shuffle(rng);
            z_orders.push(sup);
        }
        let mut qubit_orders: Vec<Vec<StabilizerId>> = Vec::with_capacity(code.n());
        let adjacency = code.qubit_stabilizers();
        for stabs in adjacency {
            let mut ids: Vec<StabilizerId> = stabs
                .iter()
                .map(|&(kind, idx)| match kind {
                    StabilizerKind::X => idx,
                    StabilizerKind::Z => num_x + idx,
                })
                .collect();
            ids.shuffle(rng);
            qubit_orders.push(ids);
        }
        Self::from_orders(code, x_orders, z_orders, qubit_orders)
    }
}

/// Properly edge-colors a bipartite graph given as left-vertex adjacency lists, returning
/// for each left vertex the color of each incident edge (parallel to `supports`).
///
/// Uses the alternating-path (Kempe chain) argument behind König's edge-coloring theorem,
/// so the number of colors equals the maximum degree. When `rng` is provided, edges are
/// processed in random order, producing different (still proper) colorings.
pub fn edge_color_bipartite<R: Rng>(
    supports: &[Vec<usize>],
    num_right: usize,
    rng: Option<&mut R>,
) -> Vec<Vec<usize>> {
    let num_left = supports.len();
    let num_vertices = num_left + num_right;
    // Edge list: (left, right, index within supports[left]).
    let mut edges: Vec<(usize, usize, usize)> = Vec::new();
    for (l, sup) in supports.iter().enumerate() {
        for (j, &r) in sup.iter().enumerate() {
            edges.push((l, r, j));
        }
    }
    if let Some(rng) = rng {
        edges.shuffle(rng);
    }
    let mut degree = vec![0usize; num_vertices];
    for &(l, r, _) in &edges {
        degree[l] += 1;
        degree[num_left + r] += 1;
    }
    let max_degree = degree.iter().copied().max().unwrap_or(0);
    // used[vertex][color] = Some(edge index into `edges`) when an incident edge has that color.
    let mut used: Vec<Vec<Option<usize>>> = vec![vec![None; max_degree]; num_vertices];
    let mut color_of: Vec<Option<usize>> = vec![None; edges.len()];

    let free_color = |used: &[Vec<Option<usize>>], v: usize| -> usize {
        used[v]
            .iter()
            .position(Option::is_none)
            .expect("a free color always exists while the incident edge is uncolored")
    };

    for e in 0..edges.len() {
        let (l, r, _) = edges[e];
        let u = l;
        let v = num_left + r;
        let alpha = free_color(&used, u);
        let beta = free_color(&used, v);
        if alpha != beta && used[v][alpha].is_some() {
            // Flip the alternating alpha/beta path starting at v.
            let mut current = v;
            let mut want = alpha;
            let mut path: Vec<usize> = Vec::new();
            while let Some(edge) = used[current][want] {
                path.push(edge);
                let (el, er, _) = edges[edge];
                let other = if current == el { num_left + er } else { el };
                current = other;
                want = if want == alpha { beta } else { alpha };
            }
            for &edge in &path {
                let old = color_of[edge].expect("path edges are colored");
                let new = if old == alpha { beta } else { alpha };
                let (el, er, _) = edges[edge];
                used[el][old] = None;
                used[num_left + er][old] = None;
                // Temporarily clear; re-set below after all clears to avoid collisions.
                color_of[edge] = Some(new);
            }
            for &edge in &path {
                let new = color_of[edge].expect("just set");
                let (el, er, _) = edges[edge];
                used[el][new] = Some(edge);
                used[num_left + er][new] = Some(edge);
            }
        }
        let color = if used[v][alpha].is_none() && used[u][alpha].is_none() {
            alpha
        } else {
            // Fall back to any color free at both endpoints (always exists after the flip;
            // the scan also covers the alpha == beta case).
            (0..max_degree)
                .find(|&c| used[u][c].is_none() && used[v][c].is_none())
                .expect("Koenig's theorem guarantees a common free color")
        };
        color_of[e] = Some(color);
        used[u][color] = Some(e);
        used[v][color] = Some(e);
    }

    // Re-assemble per-left-vertex color lists parallel to `supports`.
    let mut out: Vec<Vec<usize>> = supports.iter().map(|s| vec![usize::MAX; s.len()]).collect();
    for (e, &(l, _, j)) in edges.iter().enumerate() {
        out[l][j] = color_of[e].expect("all edges colored");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophunt_qec::small::steane_code;
    use prophunt_qec::surface::rotated_surface_code_with_layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edge_coloring_is_proper_and_uses_max_degree_colors() {
        let supports = vec![
            vec![0, 1, 2, 3],
            vec![1, 2, 4],
            vec![0, 4, 5],
            vec![2, 3, 5],
        ];
        let colors = edge_color_bipartite::<StdRng>(&supports, 6, None);
        // Proper at left vertices.
        for cols in &colors {
            let mut sorted = cols.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), cols.len());
        }
        // Proper at right vertices.
        let mut right_colors: Vec<Vec<usize>> = vec![Vec::new(); 6];
        for (l, sup) in supports.iter().enumerate() {
            for (j, &r) in sup.iter().enumerate() {
                right_colors[r].push(colors[l][j]);
            }
        }
        for cols in &right_colors {
            let mut sorted = cols.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), cols.len());
        }
        // Max degree is 4, so colors must be within 0..4.
        assert!(colors.iter().flatten().all(|&c| c < 4));
    }

    #[test]
    fn edge_coloring_handles_surface_code_tanner_graphs() {
        for d in [3, 5, 7] {
            let (code, _) = rotated_surface_code_with_layout(d);
            let supports: Vec<Vec<usize>> = (0..code.num_x_stabilizers())
                .map(|i| code.stabilizer_support(StabilizerKind::X, i))
                .collect();
            let colors = edge_color_bipartite::<StdRng>(&supports, code.n(), None);
            assert!(colors.iter().flatten().all(|&c| c < 4));
        }
    }

    #[test]
    fn coloration_schedule_is_valid_and_x_precedes_z() {
        let (code, _) = rotated_surface_code_with_layout(5);
        let schedule = ScheduleSpec::coloration(&code);
        schedule.validate(&code).unwrap();
        // Every shared qubit must see its X stabilizer before its Z stabilizer.
        for xi in 0..code.num_x_stabilizers() {
            for zi in 0..code.num_z_stabilizers() {
                for q in code.shared_qubits(xi, zi) {
                    let x_id = schedule.stabilizer_id(StabilizerKind::X, xi);
                    let z_id = schedule.stabilizer_id(StabilizerKind::Z, zi);
                    assert_eq!(schedule.first_on_qubit(q, x_id, z_id), Some(x_id));
                }
            }
        }
        // Depth is at most (#X colors) + (#Z colors) = 4 + 4 for the surface code; ASAP
        // layering may compress it slightly but never below the per-ancilla weight.
        let depth = schedule.depth().unwrap();
        assert!((4..=8).contains(&depth), "coloration depth {depth}");
    }

    #[test]
    fn hand_designed_surface_schedule_is_valid_with_depth_four() {
        for d in [3, 5, 7] {
            let (code, layout) = rotated_surface_code_with_layout(d);
            let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
            schedule.validate(&code).unwrap();
            assert_eq!(schedule.depth().unwrap(), 4, "N/Z schedule depth for d={d}");
        }
    }

    #[test]
    fn poor_surface_schedule_is_still_valid() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_poor(&code, &layout);
        schedule.validate(&code).unwrap();
        assert_eq!(schedule.depth().unwrap(), 4);
    }

    #[test]
    fn commutation_check_catches_single_crossing() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let mut schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        // Flip the relative order on exactly one shared qubit of an X/Z pair.
        let (xi, zi) = (0, 0);
        let shared = code.shared_qubits(xi, zi);
        assert_eq!(shared.len(), 2);
        let x_id = schedule.stabilizer_id(StabilizerKind::X, xi);
        let z_id = schedule.stabilizer_id(StabilizerKind::Z, zi);
        schedule.swap_relative_order(shared[0], x_id, z_id);
        assert!(matches!(
            schedule.check_commutation(&code),
            Err(CircuitError::BreaksCommutation { .. })
        ));
        // Flipping the second shared qubit restores commutation.
        schedule.swap_relative_order(shared[1], x_id, z_id);
        schedule.check_commutation(&code).unwrap();
    }

    #[test]
    fn reorder_before_moves_qubit() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let mut schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let order = schedule.order(0).to_vec();
        assert_eq!(order.len(), 4);
        let (a, b) = (order[3], order[1]);
        schedule.reorder_before(0, a, b);
        let new_order = schedule.order(0).to_vec();
        assert_eq!(new_order.len(), 4);
        let pos_a = new_order.iter().position(|&q| q == a).unwrap();
        let pos_b = new_order.iter().position(|&q| q == b).unwrap();
        assert_eq!(pos_a + 1, pos_b);
    }

    #[test]
    fn cyclic_relative_orders_are_unschedulable() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let mut schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        // Build a cycle between two stabilizers sharing two qubits: make each first on
        // one of the shared qubits while also forcing an order contradiction through the
        // per-stabilizer chains. Easiest robust cycle: stabilizer A before B on qubit q1
        // and B before A on qubit q2 can still be schedulable, so instead create a direct
        // two-node cycle by making the same pair ordered both ways via qubit chains:
        // A: [q1, q2] and B: [q2, q1] with A first on q1 and B first on q2 forces
        // A(q1) < B(q1) <= B(q2)... use three stabilizers to guarantee a cycle instead.
        let x0 = 0;
        let z0 = schedule.stabilizer_id(StabilizerKind::Z, 0);
        let shared = code.shared_qubits(0, 0);
        // A cycle requires: x0 first on shared[0], z0 first on shared[1], and the
        // per-stabilizer orders to traverse the two qubits in opposite directions.
        let (q1, q2) = (shared[0], shared[1]);
        schedule.set_relative_order(q1, x0, z0);
        schedule.set_relative_order(q2, z0, x0);
        // Force x0 to visit q2 before q1 and z0 to visit q1 before q2.
        let x_order = schedule.order(x0).to_vec();
        if x_order.iter().position(|&q| q == q1) < x_order.iter().position(|&q| q == q2) {
            schedule.reorder_before(x0, q2, q1);
        }
        let z_order = schedule.order(z0).to_vec();
        if z_order.iter().position(|&q| q == q2) < z_order.iter().position(|&q| q == q1) {
            schedule.reorder_before(z0, q1, q2);
        }
        assert_eq!(schedule.cnot_layers(), Err(CircuitError::Unschedulable));
    }

    #[test]
    fn cnot_layers_have_no_qubit_conflicts() {
        let (code, layout) = rotated_surface_code_with_layout(5);
        for schedule in [
            ScheduleSpec::surface_hand_designed(&code, &layout),
            ScheduleSpec::coloration(&code),
        ] {
            let layers = schedule.cnot_layers().unwrap();
            let total: usize = layers.iter().map(Vec::len).sum();
            assert_eq!(total, 4 * code.num_stabilizers() - 2 * 2 * (5 - 1));
            for layer in &layers {
                let mut seen = std::collections::HashSet::new();
                for &(s, q) in layer {
                    assert!(seen.insert(("anc", s)), "ancilla used twice in a layer");
                    assert!(seen.insert(("data", q)), "data qubit used twice in a layer");
                }
            }
        }
    }

    #[test]
    fn steane_coloration_schedule_is_valid() {
        let code = steane_code();
        let schedule = ScheduleSpec::coloration(&code);
        schedule.validate(&code).unwrap();
        assert_eq!(schedule.depth().unwrap(), 8);
    }

    #[test]
    fn random_coloration_schedules_differ_but_stay_valid() {
        let (code, _) = rotated_surface_code_with_layout(5);
        let mut rng = StdRng::seed_from_u64(17);
        let a = ScheduleSpec::coloration_random(&code, &mut rng);
        let b = ScheduleSpec::coloration_random(&code, &mut rng);
        a.validate(&code).unwrap();
        b.validate(&code).unwrap();
        assert_ne!(a, b, "random colorations should differ for d=5");
    }

    #[test]
    fn from_components_rejects_conflicting_first_entries() {
        let (code, layout) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::surface_hand_designed(&code, &layout);
        let orders: Vec<Vec<usize>> = (0..schedule.num_stabilizers())
            .map(|s| schedule.order(s).to_vec())
            .collect();
        let (q, a, b, first) = schedule.relative_entries().next().unwrap();
        let second = if first == a { b } else { a };
        // The same pair ordered twice — even consistently — must be rejected, so a
        // conflicting hand-edit can never silently lose one of its lines.
        let err = ScheduleSpec::from_components(
            schedule.num_x_stabilizers(),
            schedule.num_z_stabilizers(),
            orders,
            [(q, first, second), (q, second, first)],
        )
        .unwrap_err();
        assert!(
            matches!(err, CircuitError::InvalidSchedule { reason } if reason.contains("twice"))
        );
    }

    #[test]
    fn check_covers_requires_same_kind_pairs_to_be_ordered() {
        use prophunt_qec::small::quantum_repetition_code;
        let code = quantum_repetition_code(3);
        // Both Z checks act on qubit 1, but the file gave no `first 1 : 0 1` line.
        // Commutation checking never sees same-kind pairs, so without this check the
        // schedule would reach circuit construction and collide two CNOTs on qubit 1.
        let spec = ScheduleSpec::from_components(0, 2, vec![vec![1, 0], vec![1, 2]], []).unwrap();
        assert!(matches!(
            spec.check_covers(&code),
            Err(CircuitError::InvalidSchedule { .. })
        ));
        assert!(spec.validate_for_code(&code).is_err());
        // Adding the missing order makes the same schedule pass.
        let spec =
            ScheduleSpec::from_components(0, 2, vec![vec![1, 0], vec![1, 2]], [(1, 0, 1)]).unwrap();
        spec.validate_for_code(&code).unwrap();
    }

    #[test]
    fn try_from_orders_rejects_single_out_of_range_qubit_order() {
        use prophunt_qec::small::quantum_repetition_code;
        let code = quantum_repetition_code(3);
        // z checks act on {0,1} and {1,2}; qubit 2's order names a bogus stabilizer
        // as its only entry, which must still be caught.
        let err = ScheduleSpec::try_from_orders(
            &code,
            vec![],
            vec![vec![0, 1], vec![1, 2]],
            vec![vec![0], vec![0, 1], vec![999]],
        )
        .unwrap_err();
        assert!(
            matches!(err, CircuitError::InvalidSchedule { reason } if reason.contains("out-of-range"))
        );
    }

    #[test]
    fn stabilizer_id_roundtrip() {
        let (code, _) = rotated_surface_code_with_layout(3);
        let schedule = ScheduleSpec::coloration(&code);
        for s in 0..schedule.num_stabilizers() {
            let (kind, idx) = schedule.kind_index(s);
            assert_eq!(schedule.stabilizer_id(kind, idx), s);
            assert_eq!(schedule.kind_of(s), kind);
        }
    }
}
